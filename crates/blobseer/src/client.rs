//! The BlobSeer deployment handle and client library.
//!
//! [`BlobSeer`] wires the entities together (providers, provider manager,
//! metadata DHT, version manager); [`BlobSeerClient`] is the per-user handle
//! implementing the interface the paper describes: "create a blob, read/write
//! a range of bytes given by offset and size from/to a blob and append a
//! number of bytes to an existing blob" (§III-A), plus the extra primitive
//! added for Hadoop integration: exposing the page-to-provider distribution
//! so the MapReduce scheduler can place computation close to the data
//! (§III-B).
//!
//! ## Write protocol
//!
//! 1. the client reserves a version from the version manager (for appends,
//!    this also fixes the offset, so concurrent appenders never collide);
//! 2. it obtains page placements from the provider manager and pushes the
//!    page contents to the chosen providers — the bulk of the work, fully
//!    parallel across concurrent writers;
//! 3. it waits for its predecessor version to be published, builds the new
//!    segment tree (sharing unchanged subtrees with the predecessor), and
//!    commits the ticket, which publishes the version.
//!
//! Only step 3's metadata work is serialized per blob; its cost is a handful
//! of small DHT records per write, which is what lets BlobSeer sustain
//! throughput under heavy write concurrency.

use crate::config::BlobSeerConfig;
use crate::error::{BlobResult, BlobSeerError};
use crate::metadata::segment_tree::{
    build_version, lookup_range, lookup_range_readahead, PrevTree,
};
use crate::metadata::store::{AdaptiveReadahead, MetadataStore};
use crate::provider::page_key;
use crate::provider::PageRequest;
use crate::provider_manager::{ProviderManager, ProviderRepairReport};
use crate::types::{next_power_of_two, BlobId, ByteRange, PageMath, ProviderId, Version};
use crate::version_manager::{VersionInfo, VersionManager, WriteIntent, WriteTicket};
use bytes::Bytes;
use dht::DhtRepairReport;
use parking_lot::{Mutex, RwLock};
use simcluster::topology::ClusterTopology;
use simcluster::{Clock, DetectorConfig, NodeId, WallClock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;
use wire::{Direction, Transport, MSG_OVERHEAD};

/// Location information for one page of a blob version, as returned by the
/// locality primitive [`BlobSeerClient::locate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageLocation {
    /// Page index within the blob.
    pub page: u64,
    /// The byte range of the blob covered by this page, clamped to the
    /// requested range.
    pub range: ByteRange,
    /// Providers holding replicas of the page, in preference order. Empty for
    /// holes (never-written regions).
    pub providers: Vec<ProviderId>,
    /// Cluster nodes those providers run on (same order).
    pub nodes: Vec<NodeId>,
}

/// Aggregate I/O counters for a BlobSeer deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlobSeerStats {
    /// Total bytes written by clients (before replication).
    pub bytes_written: u64,
    /// Total bytes read by clients.
    pub bytes_read: u64,
    /// Number of write/append operations.
    pub write_ops: u64,
    /// Number of read operations.
    pub read_ops: u64,
}

/// A complete in-process BlobSeer deployment.
pub struct BlobSeer {
    config: BlobSeerConfig,
    topology: ClusterTopology,
    version_manager: Arc<VersionManager>,
    provider_manager: Arc<ProviderManager>,
    metadata: Arc<MetadataStore>,
    /// Per-blob page size (configurable per blob, as in the paper).
    page_sizes: RwLock<HashMap<BlobId, u64>>,
    /// Back-reference to the owning `Arc`, so deadline-triggered background
    /// work (GC ticks) can capture a `Weak` and never keep the system alive.
    self_weak: Weak<BlobSeer>,
    /// Time source for the background-GC cadence (a `SimClock` in tests).
    clock: Arc<dyn Clock>,
    /// The transport every client↔provider exchange is charged on
    /// ([`wire::InProc`] by default; [`wire::SimNet`] in the cluster-scale
    /// experiments). The metadata DHT charges the same transport through
    /// [`dht::Dht::attach_wire`].
    transport: Arc<dyn Transport>,
    /// Wire accounting for the client↔provider boundary (page uploads and
    /// downloads), in the shared [`wire::Counters`] schema. The metadata
    /// boundary's counters live on the DHT.
    provider_wire: wire::Counters,
    /// Per-blob overrides of the keep-last-K retention policy (see
    /// [`BlobSeer::with_gc_keep_last_for`]).
    gc_keep_overrides: RwLock<HashMap<BlobId, usize>>,
    /// AIMD controller for the metadata read-ahead window, when enabled.
    readahead: Option<AdaptiveReadahead>,
    gc_last: Mutex<Duration>,
    gc_running: AtomicBool,
    gc_ticks: AtomicU64,
    repair_last: Mutex<Duration>,
    repair_running: AtomicBool,
    repair_ticks: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    write_ops: AtomicU64,
    read_ops: AtomicU64,
}

impl BlobSeer {
    /// Create a deployment on a flat (single-rack) topology with one provider
    /// per node, sized from the configuration.
    pub fn new(config: BlobSeerConfig) -> Arc<Self> {
        config.validate();
        let topology = ClusterTopology::flat(config.providers as u32);
        let provider_nodes: Vec<NodeId> = topology.all_nodes().collect();
        Self::with_topology(config, &topology, &provider_nodes)
    }

    /// Create a deployment whose providers run on the given nodes of an
    /// existing cluster topology (used by the cluster-scale experiments and by
    /// BSFS when co-deployed with a MapReduce cluster).
    pub fn with_topology(
        config: BlobSeerConfig,
        topology: &ClusterTopology,
        provider_nodes: &[NodeId],
    ) -> Arc<Self> {
        Self::with_topology_and_clock(config, topology, provider_nodes, Arc::new(WallClock::new()))
    }

    /// Like [`BlobSeer::with_topology`], but on an explicit time source. The
    /// background-GC cadence reads this clock, so tests drive it with a
    /// `SimClock` instead of waiting out real intervals.
    pub fn with_topology_and_clock(
        config: BlobSeerConfig,
        topology: &ClusterTopology,
        provider_nodes: &[NodeId],
        clock: Arc<dyn Clock>,
    ) -> Arc<Self> {
        Self::with_transport(
            config,
            topology,
            provider_nodes,
            clock,
            Arc::new(wire::InProc::new()),
        )
    }

    /// Like [`BlobSeer::with_topology_and_clock`], but charging every
    /// client↔provider and client↔metadata-DHT exchange on an explicit
    /// [`wire::Transport`]. Pass a [`wire::SimNet`] to make rack distance and
    /// shared-link contention cost simulated time; the default
    /// [`wire::InProc`] keeps the historic free wire. Metadata DHT node `i`
    /// is placed on `provider_nodes[i % len]`.
    pub fn with_transport(
        config: BlobSeerConfig,
        topology: &ClusterTopology,
        provider_nodes: &[NodeId],
        clock: Arc<dyn Clock>,
        transport: Arc<dyn Transport>,
    ) -> Arc<Self> {
        config.validate();
        assert!(
            !provider_nodes.is_empty(),
            "at least one provider node is required to deploy BlobSeer"
        );
        let provider_manager = Arc::new(ProviderManager::new_in_memory(
            topology,
            provider_nodes,
            config.placement,
        ));
        let mut metadata =
            MetadataStore::new(config.metadata_providers, config.metadata_replication);
        if config.metadata_cache {
            // Tree nodes are immutable once published, so a client-side cache
            // needs no invalidation; see `metadata::cache`.
            metadata = metadata.with_node_cache(config.metadata_cache_capacity);
        }
        let metadata = Arc::new(metadata);
        let readahead = if config.adaptive_readahead {
            Some(AdaptiveReadahead::new(config.metadata_readahead))
        } else {
            None
        };
        // Client-side retry/backoff for metadata DHT operations; page I/O
        // applies the same knobs in `fetch_page`/`build_and_push`.
        metadata.dht().set_retry_policy(dht::RetryPolicy {
            attempts: config.retry_attempts,
            backoff: Duration::from_millis(config.retry_backoff_ms),
        });
        // The metadata DHT charges the same wire as the data path; exchanges
        // from threads that did not pin a source (background repair, GC) are
        // attributed to the first provider node.
        metadata.dht().attach_wire(
            Arc::clone(&transport),
            provider_nodes.to_vec(),
            provider_nodes[0],
        );
        if config.repair_interval_ms.is_some() {
            // Dead members are *discovered*: heartbeat rounds and refused
            // data operations feed timeout/suspicion detectors on both tiers.
            metadata
                .dht()
                .enable_failure_detection(Arc::clone(&clock), DetectorConfig::default());
            provider_manager
                .enable_failure_detection(Arc::clone(&clock), DetectorConfig::default());
        }
        let gc_origin = clock.now();
        Arc::new_cyclic(|weak| BlobSeer {
            config: config.clone(),
            topology: topology.clone(),
            version_manager: Arc::new(VersionManager::with_shards(config.version_manager_shards)),
            provider_manager,
            metadata,
            page_sizes: RwLock::new(HashMap::new()),
            self_weak: weak.clone(),
            clock,
            transport,
            provider_wire: wire::Counters::new(),
            gc_keep_overrides: RwLock::new(HashMap::new()),
            readahead,
            gc_last: Mutex::new(gc_origin),
            gc_running: AtomicBool::new(false),
            gc_ticks: AtomicU64::new(0),
            repair_last: Mutex::new(gc_origin),
            repair_running: AtomicBool::new(false),
            repair_ticks: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            write_ops: AtomicU64::new(0),
            read_ops: AtomicU64::new(0),
        })
    }

    /// A client attached to the first node of the topology.
    pub fn client(self: &Arc<Self>) -> BlobSeerClient {
        self.client_on(self.topology.node(0))
    }

    /// A client running on a specific cluster node (placement strategies that
    /// care about locality use this).
    pub fn client_on(self: &Arc<Self>, node: NodeId) -> BlobSeerClient {
        BlobSeerClient {
            system: Arc::clone(self),
            node,
        }
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &BlobSeerConfig {
        &self.config
    }

    /// The cluster topology the deployment runs on.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// The version manager (tests and tools).
    pub fn version_manager(&self) -> &Arc<VersionManager> {
        &self.version_manager
    }

    /// The provider manager (failure injection, load inspection).
    pub fn provider_manager(&self) -> &Arc<ProviderManager> {
        &self.provider_manager
    }

    /// The metadata store (failure injection, traffic counters).
    pub fn metadata(&self) -> &Arc<MetadataStore> {
        &self.metadata
    }

    /// The transport client↔provider and client↔metadata exchanges are
    /// charged on.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Wire accounting for the client↔provider boundary (page uploads and
    /// downloads). The metadata boundary's figures come from
    /// `metadata().dht().wire_counters()`.
    pub fn provider_wire(&self) -> &wire::Counters {
        &self.provider_wire
    }

    /// Record one client↔provider exchange and charge it on the transport.
    fn charge_provider(&self, src: NodeId, dst: NodeId, dir: Direction, out: u64, back: u64) {
        self.provider_wire.record(dir, out, back);
        self.transport.exchange(src, dst, dir, out, back);
    }

    /// Aggregate I/O counters.
    pub fn stats(&self) -> BlobSeerStats {
        BlobSeerStats {
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
        }
    }

    /// The page size of a blob.
    pub fn page_size_of(&self, blob: BlobId) -> BlobResult<u64> {
        self.page_sizes
            .read()
            .get(&blob)
            .copied()
            .ok_or(BlobSeerError::UnknownBlob(blob))
    }

    /// Pin a published snapshot against garbage collection (a long-lived
    /// version a consumer still reads; see [`crate::gc`]).
    pub fn pin_snapshot(&self, blob: BlobId, version: Version) -> BlobResult<()> {
        self.version_manager.pin_version(blob, version)
    }

    /// Drop a snapshot pin; returns whether the version was pinned.
    pub fn unpin_snapshot(&self, blob: BlobId, version: Version) -> BlobResult<bool> {
        self.version_manager.unpin_version(blob, version)
    }

    /// Run one garbage-collection cycle over every blob, applying the
    /// configured keep-last-K retention policy (see
    /// [`crate::BlobSeerConfig::gc_keep_last`]; a no-op when unset). Retired
    /// snapshots become unreadable immediately; the metadata nodes and page
    /// images only they referenced are reclaimed, and DHT tombstones with no
    /// lingering replica left behind are dropped.
    pub fn collect_garbage(&self) -> BlobResult<crate::gc::GcReport> {
        let overrides = self.gc_keep_overrides.read().clone();
        if self.config.gc_keep_last.is_none() && overrides.is_empty() {
            return Ok(crate::gc::GcReport::default());
        }
        let mut report = crate::gc::GcReport::default();
        for blob in self.version_manager.blob_ids() {
            // Per-blob override first, then the deployment-wide policy; a
            // blob covered by neither retains every version.
            let Some(keep) = overrides.get(&blob).copied().or(self.config.gc_keep_last) else {
                continue;
            };
            // A blob deleted between listing and retiring is simply gone —
            // nothing left to reclaim through the version history.
            let dead = match self.version_manager.retire_expired(blob, keep) {
                Ok(dead) => dead,
                Err(BlobSeerError::UnknownBlob(_)) => continue,
                Err(e) => return Err(e),
            };
            if dead.is_empty() {
                continue;
            }
            let surviving = self.version_manager.published_versions(blob)?;
            let swept = crate::gc::collect_blob_garbage(
                &self.metadata,
                &self.provider_manager,
                blob,
                &dead,
                &surviving,
            )?;
            report.absorb(&swept);
        }
        report.tombstones_compacted = self.metadata.dht().compact_tombstones() as u64;
        Ok(report)
    }

    /// Override the keep-last-K snapshot retention for one blob: its GC
    /// sweeps keep `keep` published versions regardless of the deployment's
    /// `gc_keep_last` (including when the deployment has none — the override
    /// alone makes the blob eligible for collection). Pinned snapshots
    /// survive regardless.
    pub fn with_gc_keep_last_for(&self, blob: BlobId, keep: usize) {
        assert!(
            keep >= 1,
            "snapshot retention must keep at least one version"
        );
        self.gc_keep_overrides.write().insert(blob, keep);
    }

    /// Drop a per-blob retention override; returns whether one was set.
    pub fn clear_gc_keep_last_for(&self, blob: BlobId) -> bool {
        self.gc_keep_overrides.write().remove(&blob).is_some()
    }

    /// The deployment's time source (tests swap in a `SimClock`).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// How many background GC sweeps the cadence has completed (see
    /// [`crate::BlobSeerConfig::with_gc_interval`]).
    pub fn gc_tick_count(&self) -> u64 {
        self.gc_ticks.load(Ordering::Acquire)
    }

    /// The current metadata read-ahead window: the adaptive controller's
    /// value when enabled, else the static configuration.
    pub fn readahead_window(&self) -> usize {
        match &self.readahead {
            Some(ra) => ra.window(),
            None => self.config.metadata_readahead,
        }
    }

    /// Background-GC cadence: called on the write path after a commit. When
    /// the configured interval has elapsed on the deployment clock, one GC
    /// sweep is spawned on the executor; the writer itself never blocks on
    /// it. There is no dedicated timer thread to join on shutdown — the task
    /// holds only a `Weak` reference, so dropping the system cancels the
    /// cadence and the sweep's work dies with the upgrade failure.
    fn maybe_tick_gc(&self) {
        let Some(interval_ms) = self.config.gc_interval_ms else {
            return;
        };
        let now = self.clock.now();
        {
            let mut last = self.gc_last.lock();
            if now.saturating_sub(*last) < Duration::from_millis(interval_ms) {
                return;
            }
            *last = now;
        }
        // At most one sweep in flight: an overrunning sweep absorbs the
        // deadlines it misses rather than queueing them up.
        if self.gc_running.swap(true, Ordering::AcqRel) {
            return;
        }
        let weak = self.self_weak.clone();
        drop(miniexec::spawn(move || {
            if let Some(sys) = weak.upgrade() {
                let _ = sys.collect_garbage();
                sys.gc_ticks.fetch_add(1, Ordering::AcqRel);
                sys.gc_running.store(false, Ordering::Release);
            }
        }));
    }

    /// How many background repair passes the cadence has completed (see
    /// [`crate::BlobSeerConfig::with_repair_interval`]).
    pub fn repair_tick_count(&self) -> u64 {
        self.repair_ticks.load(Ordering::Acquire)
    }

    /// One full repair pass over both storage tiers, run synchronously:
    /// heartbeat-probe every member, then actively re-replicate
    /// under-replicated metadata DHT keys and announced provider pages onto
    /// live members. Nothing here relies on `revive`: dead members stay
    /// dead, replicas are rebuilt elsewhere from surviving copies.
    pub fn repair(&self) -> (DhtRepairReport, ProviderRepairReport) {
        let dht = self.metadata.dht();
        dht.heartbeat_tick();
        self.provider_manager.heartbeat_tick();
        let metadata_report = dht.repair();
        let page_report = self.provider_manager.repair(self.config.page_replication);
        (metadata_report, page_report)
    }

    /// Background-repair cadence, mirroring the GC cadence: called on the
    /// write path after a commit; when the configured interval has elapsed on
    /// the deployment clock, one repair pass is spawned on the executor. At
    /// most one pass is in flight; the task holds only a `Weak` reference so
    /// dropping the system cancels the cadence.
    fn maybe_tick_repair(&self) {
        let Some(interval_ms) = self.config.repair_interval_ms else {
            return;
        };
        let now = self.clock.now();
        {
            let mut last = self.repair_last.lock();
            if now.saturating_sub(*last) < Duration::from_millis(interval_ms) {
                return;
            }
            *last = now;
        }
        if self.repair_running.swap(true, Ordering::AcqRel) {
            return;
        }
        let weak = self.self_weak.clone();
        drop(miniexec::spawn(move || {
            if let Some(sys) = weak.upgrade() {
                let _ = sys.repair();
                sys.repair_ticks.fetch_add(1, Ordering::AcqRel);
                sys.repair_running.store(false, Ordering::Release);
            }
        }));
    }
}

/// Run `work(i)` for every `i in 0..items` and return the results in index
/// order. With more than one item and `parallelism > 1` the work is fanned
/// out as scoped tasks on the process-wide executor's fixed worker pool, so
/// concurrency is bounded by pool width and queue depth no matter how many
/// clients fan out at once. Items are assigned to workers by stride, which
/// keeps the distribution deterministic. Both the read path (per-page
/// replica fetches) and the write path (per-page replica pushes) go through
/// this.
fn fan_out<T, F>(parallelism: usize, items: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = parallelism.max(1).min(items);
    if workers <= 1 {
        return (0..items).map(work).collect();
    }
    let mut out: Vec<Option<T>> = (0..items).map(|_| None).collect();
    miniexec::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut i = w;
                    while i < items {
                        local.push((i, work(i)));
                        i += workers;
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join() {
                out[i] = Some(value);
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("every item computed"))
        .collect()
}

/// A client handle; cheap to clone and safe to move across threads.
#[derive(Clone)]
pub struct BlobSeerClient {
    system: Arc<BlobSeer>,
    node: NodeId,
}

impl BlobSeerClient {
    /// The cluster node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The deployment this client talks to.
    pub fn system(&self) -> &Arc<BlobSeer> {
        &self.system
    }

    /// Create a new blob. `page_size` overrides the deployment default
    /// ("its size can be configured for each blob", §III-A).
    pub fn create(&self, page_size: Option<u64>) -> BlobResult<BlobId> {
        let page_size = page_size.unwrap_or(self.system.config.default_page_size);
        if page_size == 0 {
            return Err(BlobSeerError::InvalidArgument(
                "page size must be non-zero".into(),
            ));
        }
        let blob = self.system.version_manager.create_blob();
        self.system.page_sizes.write().insert(blob, page_size);
        Ok(blob)
    }

    /// Delete a blob and all its versions' metadata bookkeeping.
    pub fn delete(&self, blob: BlobId) -> BlobResult<()> {
        self.system.version_manager.delete_blob(blob)?;
        self.system.page_sizes.write().remove(&blob);
        Ok(())
    }

    /// The latest published version of a blob.
    pub fn latest_version(&self, blob: BlobId) -> BlobResult<VersionInfo> {
        self.system.version_manager.latest(blob)
    }

    /// Descriptor of a specific version.
    pub fn version_info(&self, blob: BlobId, version: Version) -> BlobResult<VersionInfo> {
        self.system.version_manager.get_version(blob, version)
    }

    /// Size (bytes) of the blob at its latest version.
    pub fn size(&self, blob: BlobId) -> BlobResult<u64> {
        Ok(self.latest_version(blob)?.size)
    }

    /// Write `data` at `offset`, producing (and returning) a new version.
    pub fn write(&self, blob: BlobId, offset: u64, data: &[u8]) -> BlobResult<Version> {
        self.do_write(
            blob,
            WriteIntent::WriteAt {
                offset,
                len: data.len() as u64,
            },
            data,
        )
    }

    /// Append `data` at the end of the blob, producing a new version. The
    /// append offset is assigned by the version manager, so concurrent
    /// appenders each get their own, non-overlapping region.
    pub fn append(&self, blob: BlobId, data: &[u8]) -> BlobResult<Version> {
        self.do_write(
            blob,
            WriteIntent::Append {
                len: data.len() as u64,
            },
            data,
        )
    }

    fn do_write(&self, blob: BlobId, intent: WriteIntent, data: &[u8]) -> BlobResult<Version> {
        if data.is_empty() {
            return Err(BlobSeerError::InvalidArgument("zero-length write".into()));
        }
        // Attribute this thread's metadata DHT exchanges (tree build, commit
        // records) to the client's node for transport charging.
        let _src = wire::source_guard(self.node);
        let sys = &self.system;
        let page_size = sys.page_size_of(blob)?;
        let pm = PageMath::new(page_size);

        // Step 1: reserve a version (and the offset, for appends).
        let ticket = sys.version_manager.reserve(blob, intent)?;
        let result = self.write_reserved(blob, &ticket, data, &pm);
        if result.is_err() {
            // Nothing was published under the reserved version: alias the
            // ticket to its predecessor so later writers are not stuck in
            // `wait_for_predecessor` on a version that will never appear.
            let _ = sys.version_manager.abort(&ticket);
        }
        result
    }

    /// Steps 2–3 of the write protocol, with a reservation already held. Any
    /// error returned here makes `do_write` abort the ticket.
    fn write_reserved(
        &self,
        blob: BlobId,
        ticket: &WriteTicket,
        data: &[u8],
        pm: &PageMath,
    ) -> BlobResult<Version> {
        let sys = &self.system;
        let page_size = pm.page_size();
        let range = ticket.range;
        let (first_page, last_page) = pm
            .pages_touched(range)
            .expect("non-empty write touches at least one page");
        let num_pages = last_page - first_page + 1;

        // Step 2a: figure out boundary merges. If the write starts or ends in
        // the middle of a page that already holds data, the old bytes of that
        // page must be carried into the new page image. Concurrent unaligned
        // writers to the same page race (as in the original system); aligned
        // writes — the only kind BSFS and the benchmarks issue — never merge.
        let needs_head_merge =
            !range.offset.is_multiple_of(page_size) && ticket.prev_size > pm.page_start(first_page);
        let tail_unaligned = !range.end().is_multiple_of(page_size);
        let needs_tail_merge = tail_unaligned && range.end() < ticket.prev_size;
        let latest = sys.version_manager.latest(blob)?;
        let head_old = if needs_head_merge {
            self.read_page_image(blob, &latest, pm, first_page)?
        } else {
            Vec::new()
        };
        let tail_old = if needs_tail_merge && last_page != first_page {
            self.read_page_image(blob, &latest, pm, last_page)?
        } else if needs_tail_merge {
            // Same page as the head; reuse what we already fetched (or fetch
            // it now if the head did not need merging).
            if needs_head_merge {
                head_old.clone()
            } else {
                self.read_page_image(blob, &latest, pm, first_page)?
            }
        } else {
            Vec::new()
        };

        // Step 2b: allocate providers and push the page images.
        let placements =
            sys.provider_manager
                .allocate(num_pages, sys.config.page_replication, self.node);
        if placements.is_empty() {
            return Err(BlobSeerError::NoProviders);
        }

        // Building one page image and pushing it to its replicas is
        // independent of every other page, so the per-page work fans out over
        // a bounded scoped-thread pool (`io_parallelism` workers). Failure
        // semantics are per page and unchanged: dead replicas are skipped, a
        // page with no live replica fails the write.
        let build_and_push = |i: usize, page: u64| -> BlobResult<Vec<ProviderId>> {
            let page_start = pm.page_start(page);
            let page_end_limit = (page_start + page_size).min(ticket.new_size);
            let image_len = (page_end_limit - page_start) as usize;
            let mut image = vec![0u8; image_len];

            // Old bytes carried over on the boundaries.
            if page == first_page && needs_head_merge {
                let keep = ((range.offset - page_start) as usize)
                    .min(image_len)
                    .min(head_old.len());
                image[..keep].copy_from_slice(&head_old[..keep]);
            }
            if page == last_page && needs_tail_merge {
                let from = (range.end() - page_start) as usize;
                if from < tail_old.len() {
                    let n = (tail_old.len() - from).min(image_len.saturating_sub(from));
                    image[from..from + n].copy_from_slice(&tail_old[from..from + n]);
                }
            }

            // New bytes from the write itself.
            let copy_start_in_blob = range.offset.max(page_start);
            let copy_end_in_blob = range.end().min(page_start + page_size);
            let dst_from = (copy_start_in_blob - page_start) as usize;
            let dst_to = (copy_end_in_blob - page_start) as usize;
            let src_from = (copy_start_in_blob - range.offset) as usize;
            let src_to = (copy_end_in_blob - range.offset) as usize;
            image[dst_from..dst_to].copy_from_slice(&data[src_from..src_to]);

            // Push to every planned replica provider. A refusal means the
            // provider is dead: feed the failure detector and fail over to
            // other live providers, so the page still reaches the planned
            // replica count and the metadata records where the copies really
            // landed. A page with no live home at all retries under the
            // configured backoff (a concurrent join, revive or repair pass
            // may restore capacity) before failing the write.
            let replicas = &placements[i];
            let key = page_key(blob, ticket.version, page);
            let image = Bytes::from(image);
            let mut stored: Vec<ProviderId> = Vec::with_capacity(replicas.len());
            let mut backoff = Duration::from_millis(sys.config.retry_backoff_ms);
            for attempt in 0..sys.config.retry_attempts.max(1) {
                if attempt > 0 {
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
                for pid in replicas.iter() {
                    if stored.contains(pid) {
                        continue;
                    }
                    let provider = sys
                        .provider_manager
                        .provider(*pid)
                        .ok_or(BlobSeerError::NoProviders)?;
                    // The page image crosses the wire whether the provider
                    // accepts or turns out to be dead.
                    let pushed = provider.put_page(&key, image.clone());
                    sys.charge_provider(
                        self.node,
                        provider.node(),
                        Direction::Write,
                        key.len() as u64 + image.len() as u64 + MSG_OVERHEAD,
                        MSG_OVERHEAD,
                    );
                    match pushed {
                        Ok(()) => stored.push(*pid),
                        Err(_) => sys.provider_manager.note_down(*pid),
                    }
                }
                // Fail over past dead planned replicas onto any other live
                // provider (all-alive writes never enter this loop).
                if stored.len() < replicas.len() {
                    for provider in sys.provider_manager.providers() {
                        if stored.len() >= replicas.len() {
                            break;
                        }
                        let pid = provider.id();
                        if stored.contains(&pid) || replicas.contains(&pid) {
                            continue;
                        }
                        let pushed = provider.put_page(&key, image.clone());
                        sys.charge_provider(
                            self.node,
                            provider.node(),
                            Direction::Write,
                            key.len() as u64 + image.len() as u64 + MSG_OVERHEAD,
                            MSG_OVERHEAD,
                        );
                        if pushed.is_ok() {
                            stored.push(pid);
                        }
                    }
                }
                if !stored.is_empty() {
                    break;
                }
            }
            if stored.is_empty() {
                return Err(BlobSeerError::NoProviders);
            }
            // Announce every copy so the repair pass can police this page's
            // replication and readers can fail over past the recorded set.
            for pid in &stored {
                sys.provider_manager.announce(&key, *pid);
            }
            Ok(stored)
        };
        let pages: Vec<u64> = (first_page..=last_page).collect();
        let per_page = fan_out(sys.config.io_parallelism, pages.len(), |i| {
            build_and_push(i, pages[i])
        });
        let mut written: BTreeMap<u64, Vec<ProviderId>> = BTreeMap::new();
        for (page, stored) in pages.iter().zip(per_page) {
            written.insert(*page, stored?);
        }

        // Step 3: wait for the predecessor, build the new tree, publish.
        let prev = sys.version_manager.wait_for_predecessor(ticket)?;
        let prev_tree = PrevTree {
            root: prev.root,
            span: if prev.size == 0 {
                0
            } else {
                next_power_of_two(pm.pages_for(prev.size))
            },
        };
        let new_span = next_power_of_two(pm.pages_for(ticket.new_size));
        let root = build_version(
            &sys.metadata,
            blob,
            ticket.version,
            prev_tree,
            new_span,
            &written,
        )?;
        let info = sys.version_manager.commit(ticket, Some(root))?;

        sys.bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        sys.write_ops.fetch_add(1, Ordering::Relaxed);
        sys.maybe_tick_gc();
        sys.maybe_tick_repair();
        Ok(info.version)
    }

    /// Read the current image of one page at a given (usually latest) version,
    /// zero-padded to the page's valid length. Used for boundary merges.
    fn read_page_image(
        &self,
        blob: BlobId,
        version: &VersionInfo,
        pm: &PageMath,
        page: u64,
    ) -> BlobResult<Vec<u8>> {
        let page_start = pm.page_start(page);
        if page_start >= version.size {
            return Ok(Vec::new());
        }
        let len = (version.size - page_start).min(pm.page_size());
        let data = self.read(blob, version.version, page_start, len)?;
        Ok(data.to_vec())
    }

    /// Read `len` bytes at `offset` from a specific published version.
    pub fn read(&self, blob: BlobId, version: Version, offset: u64, len: u64) -> BlobResult<Bytes> {
        let info = self.system.version_manager.get_version(blob, version)?;
        self.read_at_version(blob, &info, offset, len)
    }

    /// Read from the latest published version.
    pub fn read_latest(&self, blob: BlobId, offset: u64, len: u64) -> BlobResult<Bytes> {
        let info = self.system.version_manager.latest(blob)?;
        self.read_at_version(blob, &info, offset, len)
    }

    fn read_at_version(
        &self,
        blob: BlobId,
        info: &VersionInfo,
        offset: u64,
        len: u64,
    ) -> BlobResult<Bytes> {
        if len == 0 {
            return Ok(Bytes::new());
        }
        // Attribute this thread's metadata descent to the client's node.
        let _src = wire::source_guard(self.node);
        let sys = &self.system;
        // `checked_add`, not `+`: a huge offset must come back as
        // `OutOfBounds`, not wrap around and pass the bounds check in release
        // builds.
        let requested_end = offset.checked_add(len);
        if requested_end.is_none() || requested_end.unwrap() > info.size {
            return Err(BlobSeerError::OutOfBounds {
                blob,
                version: info.version,
                requested_end: requested_end.unwrap_or(u64::MAX),
                size: info.size,
            });
        }
        let page_size = sys.page_size_of(blob)?;
        let pm = PageMath::new(page_size);
        let range = ByteRange::new(offset, len);
        let (first_page, last_page) = pm.pages_touched(range).expect("non-empty read");
        let span = next_power_of_two(pm.pages_for(info.size));

        // One batched, cached metadata descent resolves every page of the
        // range; the page fetches themselves then fan out over the bounded
        // I/O pool (replica failover stays per page, inside `fetch_page`).
        // With read-ahead configured (and a cache to land in), the descent
        // also pre-warms the next window of the scan in the same round trips.
        let window = if sys.metadata.cache_enabled() {
            sys.readahead_window() as u64
        } else {
            0
        };
        let locations = lookup_range_readahead(
            &sys.metadata,
            info.root,
            span,
            first_page,
            last_page,
            window,
        )?;
        // Per-location byte window within the page: the read wants
        // `[from, to)` of a page whose valid (readable) length at this
        // version is `valid_len`. `to <= valid_len` always, because the
        // bounds check above pinned `range.end() <= info.size`.
        let windows: Vec<(usize, usize, usize)> = locations
            .iter()
            .map(|meta| {
                let page_start = pm.page_start(meta.page);
                let valid_len = ((info.size - page_start).min(page_size)) as usize;
                let from = (offset.max(page_start) - page_start) as usize;
                let to = ((range.end().min(page_start + page_size)) - page_start) as usize;
                (from, to, valid_len)
            })
            .collect();
        // Coalesced: fold the fetches bound for the same provider into one
        // `DownloadMany` exchange each, issued sequentially from this
        // thread. Naive: one exchange per page, fanned out over the bounded
        // I/O pool. Either way each fetch yields exactly the window's bytes.
        let pieces = if sys.config.coalesce_reads {
            self.fetch_pages_coalesced(blob, &locations, &windows)
        } else {
            fan_out(sys.config.io_parallelism, locations.len(), |i| {
                let (from, to, valid_len) = windows[i];
                self.fetch_page_window(blob, &locations[i], valid_len, from, to)
            })
        };

        let mut out = Vec::with_capacity(len as usize);
        for piece in pieces {
            out.extend_from_slice(&piece?);
        }

        sys.bytes_read.fetch_add(len, Ordering::Relaxed);
        sys.read_ops.fetch_add(1, Ordering::Relaxed);
        // Feed the prefetch outcome of this read back into the adaptive
        // window controller for the next one.
        if let Some(ra) = &sys.readahead {
            ra.observe(&sys.metadata.stats());
        }
        Ok(Bytes::from(out))
    }

    /// Turn a provider's response into exactly the window's bytes.
    ///
    /// A ranged response carries the stored intersection of `[from, to)` and
    /// only needs zero-padding to the window length (the stored image can be
    /// shorter than the valid length when the blob grew past this page's
    /// last write through a hole). A whole-page response is padded/truncated
    /// to `valid_len` first — the historic path — then sliced.
    fn window_bytes(
        data: &Bytes,
        ranged: bool,
        from: usize,
        to: usize,
        valid_len: usize,
    ) -> Vec<u8> {
        if ranged {
            let mut piece = data.to_vec();
            piece.truncate(to - from);
            piece.resize(to - from, 0);
            piece
        } else {
            let mut image = data.to_vec();
            if image.len() < valid_len {
                image.resize(valid_len, 0);
            } else {
                image.truncate(valid_len);
            }
            image[from..to].to_vec()
        }
    }

    /// Should this window go over the wire as a ranged `Download`? Only when
    /// ranged reads are enabled and the window is a strict sub-range — a
    /// whole-page window gains nothing from the range header.
    fn use_ranged(&self, from: usize, to: usize, valid_len: usize) -> bool {
        self.system.config.ranged_reads && (from != 0 || to != valid_len)
    }

    /// Fetch the `[from, to)` window of one page from its replicas, failing
    /// over across dead providers; holes read as zeroes without touching the
    /// wire. Pages are stored on providers under the version of the write
    /// that *created* them, which the metadata lookup reports in
    /// [`PageMeta::created`]. With ranged reads enabled, only the window's
    /// bytes cross the wire; otherwise the whole page is fetched and sliced
    /// locally.
    ///
    /// The metadata's provider list is where the write put the copies; under
    /// churn the repair pass may since have rebuilt replicas elsewhere, so
    /// after exhausting the recorded set the read chases the page-announcement
    /// registry. A miss that saw a dead provider is *transient* (the only
    /// live copy may be resting on a node that just refused) and retries
    /// under the configured backoff; a miss with every probe answered is
    /// authoritative and fails immediately.
    fn fetch_page_window(
        &self,
        blob: BlobId,
        meta: &crate::metadata::segment_tree::PageMeta,
        valid_len: usize,
        from: usize,
        to: usize,
    ) -> BlobResult<Vec<u8>> {
        let created = match meta.created {
            // A hole: never written, reads as zeroes.
            None => return Ok(vec![0u8; to - from]),
            Some(v) => v,
        };
        let sys = &self.system;
        let ranged = self.use_ranged(from, to, valid_len);
        let key = page_key(blob, created, meta.page);
        let mut backoff = Duration::from_millis(sys.config.retry_backoff_ms);
        for attempt in 0..sys.config.retry_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            // Recorded replicas first, then any holder announced since (a
            // repair copy); skip duplicates.
            let mut candidates = meta.providers.clone();
            for pid in sys.provider_manager.holders(&key) {
                if !candidates.contains(&pid) {
                    candidates.push(pid);
                }
            }
            let mut saw_down = false;
            for pid in &candidates {
                let provider = match sys.provider_manager.provider(*pid) {
                    Some(p) => p,
                    None => continue,
                };
                let resp = if ranged {
                    provider.download_page(&key, from as u64, Some((to - from) as u64))
                } else {
                    provider.get_page(&key)
                };
                let resp_bytes = match &resp {
                    Ok(Some(d)) => d.len() as u64,
                    _ => 0,
                };
                self.system.charge_provider(
                    self.node,
                    provider.node(),
                    Direction::Read,
                    key.len() as u64 + MSG_OVERHEAD,
                    resp_bytes + MSG_OVERHEAD,
                );
                match resp {
                    Ok(Some(data)) => {
                        return Ok(Self::window_bytes(&data, ranged, from, to, valid_len));
                    }
                    Ok(None) => continue,
                    Err(_) => {
                        sys.provider_manager.note_down(*pid);
                        saw_down = true;
                        continue;
                    }
                }
            }
            if !saw_down {
                // Every candidate answered and none holds the page: retrying
                // cannot change the outcome.
                break;
            }
        }
        Err(BlobSeerError::PageUnavailable {
            blob,
            version: created,
            page: meta.page,
            tried: meta.providers.clone(),
        })
    }

    /// Fetch every page window of a read with per-destination coalescing:
    /// the demand fetches bound for the same (first-replica) provider fold
    /// into one `DownloadMany` message — one wire exchange, one latency
    /// charge — per destination. Groups are visited in provider-id order,
    /// so a single-threaded caller issues a deterministic exchange sequence.
    /// Holes resolve locally; anything a batch could not answer (provider
    /// dead, page missing, page not in the recorded first replica) falls
    /// back to the per-page fail-over path.
    fn fetch_pages_coalesced(
        &self,
        blob: BlobId,
        locations: &[crate::metadata::segment_tree::PageMeta],
        windows: &[(usize, usize, usize)],
    ) -> Vec<BlobResult<Vec<u8>>> {
        let sys = &self.system;
        let mut out: Vec<Option<BlobResult<Vec<u8>>>> = locations.iter().map(|_| None).collect();
        let mut groups: BTreeMap<ProviderId, Vec<usize>> = BTreeMap::new();
        for (i, meta) in locations.iter().enumerate() {
            let (from, to, _) = windows[i];
            if meta.created.is_none() {
                out[i] = Some(Ok(vec![0u8; to - from]));
            } else if let Some(pid) = meta.providers.first() {
                groups.entry(*pid).or_default().push(i);
            }
            // `created` set but no recorded provider: leave for the
            // fall-back path, which also chases the announcement registry.
        }
        for (pid, indices) in &groups {
            let Some(provider) = sys.provider_manager.provider(*pid) else {
                continue;
            };
            let requests: Vec<PageRequest> = indices
                .iter()
                .map(|&i| {
                    let meta = &locations[i];
                    let (from, to, valid_len) = windows[i];
                    let key = page_key(
                        blob,
                        meta.created.expect("grouped pages are created"),
                        meta.page,
                    );
                    if self.use_ranged(from, to, valid_len) {
                        PageRequest {
                            key,
                            offset: from as u64,
                            len: Some((to - from) as u64),
                        }
                    } else {
                        PageRequest {
                            key,
                            offset: 0,
                            len: None,
                        }
                    }
                })
                .collect();
            let req_bytes: u64 = requests.iter().map(|r| r.key.len() as u64).sum();
            let resp = provider.download_many(requests);
            let resp_bytes: u64 = match &resp {
                Ok(slots) => slots.iter().flatten().map(|d| d.len() as u64).sum(),
                Err(_) => 0,
            };
            sys.charge_provider(
                self.node,
                provider.node(),
                Direction::Read,
                req_bytes + MSG_OVERHEAD,
                resp_bytes + MSG_OVERHEAD,
            );
            match resp {
                Ok(slots) => {
                    for (&i, slot) in indices.iter().zip(slots) {
                        if let Some(data) = slot {
                            let (from, to, valid_len) = windows[i];
                            let ranged = self.use_ranged(from, to, valid_len);
                            out[i] =
                                Some(Ok(Self::window_bytes(&data, ranged, from, to, valid_len)));
                        }
                    }
                }
                Err(_) => sys.provider_manager.note_down(*pid),
            }
        }
        out.into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| {
                    let (from, to, valid_len) = windows[i];
                    self.fetch_page_window(blob, &locations[i], valid_len, from, to)
                })
            })
            .collect()
    }

    /// Expose the page-to-provider distribution of a byte range, so that a
    /// MapReduce scheduler can ship computation to the data (§III-B: "we
    /// extended BlobSeer with a new primitive, that exposes the pages
    /// distribution to providers").
    pub fn locate(
        &self,
        blob: BlobId,
        version: Version,
        offset: u64,
        len: u64,
    ) -> BlobResult<Vec<PageLocation>> {
        let _src = wire::source_guard(self.node);
        let sys = &self.system;
        let info = sys.version_manager.get_version(blob, version)?;
        if len == 0 || info.size == 0 {
            return Ok(Vec::new());
        }
        // Saturating: locate clamps to the blob size anyway, so an
        // overflowing `offset + len` just means "to the end".
        let end = offset.saturating_add(len).min(info.size);
        if offset >= end {
            return Ok(Vec::new());
        }
        let page_size = sys.page_size_of(blob)?;
        let pm = PageMath::new(page_size);
        let range = ByteRange::new(offset, end - offset);
        let (first_page, last_page) = pm.pages_touched(range).expect("non-empty range");
        let span = next_power_of_two(pm.pages_for(info.size));
        let locations = lookup_range(&sys.metadata, info.root, span, first_page, last_page)?;

        Ok(locations
            .into_iter()
            .map(|meta| {
                let page_range = pm.page_range(meta.page);
                let clamped = page_range
                    .intersection(&range)
                    .unwrap_or(ByteRange::new(0, 0));
                let nodes = meta
                    .providers
                    .iter()
                    .filter_map(|p| sys.provider_manager.node_of(*p))
                    .collect();
                PageLocation {
                    page: meta.page,
                    range: clamped,
                    providers: meta.providers,
                    nodes,
                }
            })
            .collect())
    }

    /// Locate on the latest version.
    pub fn locate_latest(
        &self,
        blob: BlobId,
        offset: u64,
        len: u64,
    ) -> BlobResult<Vec<PageLocation>> {
        let info = self.latest_version(blob)?;
        self.locate(blob, info.version, offset, len)
    }

    /// All published versions of a blob (snapshot history).
    pub fn versions(&self, blob: BlobId) -> BlobResult<Vec<VersionInfo>> {
        self.system.version_manager.published_versions(blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider_manager::PlacementStrategy;

    fn small_system() -> Arc<BlobSeer> {
        BlobSeer::new(BlobSeerConfig::for_tests())
    }

    #[test]
    fn create_write_read_roundtrip() {
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(16)).unwrap();
        assert_eq!(sys.page_size_of(blob).unwrap(), 16);

        let v1 = client.write(blob, 0, b"hello, blobseer!").unwrap();
        assert_eq!(v1, Version(1));
        assert_eq!(client.size(blob).unwrap(), 16);
        assert_eq!(
            &client.read_latest(blob, 0, 16).unwrap()[..],
            b"hello, blobseer!"
        );
        assert_eq!(&client.read_latest(blob, 7, 8).unwrap()[..], b"blobseer");
    }

    #[test]
    fn multi_page_write_and_subrange_reads() {
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(8)).unwrap();
        // 50 bytes over 8-byte pages: 7 pages, last partial.
        let data: Vec<u8> = (0..50u8).collect();
        client.write(blob, 0, &data).unwrap();
        assert_eq!(client.size(blob).unwrap(), 50);
        assert_eq!(client.read_latest(blob, 0, 50).unwrap().to_vec(), data);
        // Unaligned sub-range crossing page boundaries.
        assert_eq!(
            client.read_latest(blob, 5, 20).unwrap().to_vec(),
            data[5..25].to_vec()
        );
        assert_eq!(
            client.read_latest(blob, 47, 3).unwrap().to_vec(),
            data[47..50].to_vec()
        );
    }

    #[test]
    fn versions_are_immutable_snapshots() {
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(4)).unwrap();
        let v1 = client.write(blob, 0, b"AAAAAAAA").unwrap();
        let v2 = client.write(blob, 4, b"BBBB").unwrap();
        let v3 = client.write(blob, 0, b"CC").unwrap();

        assert_eq!(&client.read(blob, v1, 0, 8).unwrap()[..], b"AAAAAAAA");
        assert_eq!(&client.read(blob, v2, 0, 8).unwrap()[..], b"AAAABBBB");
        assert_eq!(&client.read(blob, v3, 0, 8).unwrap()[..], b"CCAABBBB");
        // History is listed oldest-first.
        let versions = client.versions(blob).unwrap();
        assert_eq!(versions.len(), 4); // v0..v3
        assert_eq!(versions[3].version, v3);
    }

    #[test]
    fn appends_extend_the_blob() {
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(8)).unwrap();
        client.append(blob, b"0123456789").unwrap();
        client.append(blob, b"abcde").unwrap();
        assert_eq!(client.size(blob).unwrap(), 15);
        assert_eq!(
            &client.read_latest(blob, 0, 15).unwrap()[..],
            b"0123456789abcde"
        );
        // The second append started mid-page (offset 10 with 8-byte pages):
        // boundary merge must have preserved the first append's tail.
        assert_eq!(&client.read_latest(blob, 8, 4).unwrap()[..], b"89ab");
    }

    #[test]
    fn sparse_write_reads_zeroes_in_the_hole() {
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(8)).unwrap();
        client.write(blob, 0, b"head").unwrap();
        client.write(blob, 32, b"tail").unwrap();
        assert_eq!(client.size(blob).unwrap(), 36);
        let all = client.read_latest(blob, 0, 36).unwrap();
        assert_eq!(&all[0..4], b"head");
        assert!(
            all[4..32].iter().all(|b| *b == 0),
            "hole must read as zeroes"
        );
        assert_eq!(&all[32..36], b"tail");
    }

    #[test]
    fn out_of_bounds_read_is_rejected() {
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(8)).unwrap();
        client.write(blob, 0, b"12345").unwrap();
        assert!(matches!(
            client.read_latest(blob, 0, 6),
            Err(BlobSeerError::OutOfBounds { .. })
        ));
        assert!(matches!(
            client.read_latest(blob, 10, 1),
            Err(BlobSeerError::OutOfBounds { .. })
        ));
        // Zero-length read anywhere is fine and returns empty bytes.
        assert!(client.read_latest(blob, 0, 0).unwrap().is_empty());
    }

    #[test]
    fn huge_offset_write_is_rejected_not_wrapped() {
        // Regression: `reserve` computed `offset + len` unchecked, so a huge
        // offset wrapped in release builds, reserved a bogus tiny size and
        // crashed the writer mid-build — leaving its ticket outstanding.
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(8)).unwrap();
        assert!(matches!(
            client.write(blob, u64::MAX - 10, &[1u8; 100]),
            Err(BlobSeerError::InvalidArgument(_))
        ));
        // The rejected attempt reserved nothing: the next write proceeds.
        client.write(blob, 0, b"ok").unwrap();
        assert_eq!(&client.read_latest(blob, 0, 2).unwrap()[..], b"ok");
    }

    #[test]
    fn failed_write_aborts_its_ticket_so_later_writers_proceed() {
        // Regression: an error between reserve and commit (here: no live
        // provider) used to leave the reserved version outstanding forever,
        // deadlocking every subsequent writer in wait_for_predecessor.
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(16)).unwrap();
        client.write(blob, 0, b"seed").unwrap();
        for p in sys.provider_manager().providers() {
            p.kill();
        }
        assert!(matches!(
            client.write(blob, 0, b"fail"),
            Err(BlobSeerError::NoProviders)
        ));
        for p in sys.provider_manager().providers() {
            p.revive();
        }
        // Would hang before the abort-on-error fix.
        let v = client.write(blob, 0, b"okay").unwrap();
        assert_eq!(&client.read(blob, v, 0, 4).unwrap()[..], b"okay");
    }

    #[test]
    fn huge_offset_read_is_rejected_not_wrapped() {
        // Regression: `offset + len` used to be unchecked, so a read at
        // offset u64::MAX - 1 wrapped around in release builds, passed the
        // bounds check and then panicked deep in page arithmetic.
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(8)).unwrap();
        client.write(blob, 0, b"payload!").unwrap();
        for len in [2u64, 4, 1 << 40] {
            assert!(
                matches!(
                    client.read_latest(blob, u64::MAX - 1, len),
                    Err(BlobSeerError::OutOfBounds { .. })
                ),
                "offset u64::MAX - 1, len {len} must be out of bounds"
            );
        }
        // Saturating locate on the same offsets just reports nothing.
        assert!(client
            .locate_latest(blob, u64::MAX - 1, 2)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn parallel_multi_page_read_returns_bytes_in_order() {
        // 32 pages fetched through the bounded pool must reassemble exactly.
        let sys = BlobSeer::new(
            BlobSeerConfig::for_tests()
                .with_providers(8)
                .with_io_parallelism(5),
        );
        let client = sys.client();
        let blob = client.create(Some(64)).unwrap();
        let data: Vec<u8> = (0..64 * 32).map(|i| (i % 251) as u8).collect();
        client.write(blob, 0, &data).unwrap();
        assert_eq!(
            client.read_latest(blob, 0, data.len() as u64).unwrap(),
            data
        );
        // Unaligned sub-range crossing many pages.
        assert_eq!(
            client.read_latest(blob, 100, 1500).unwrap(),
            data[100..1600].to_vec()
        );
    }

    #[test]
    fn sequential_io_parallelism_one_still_works() {
        let sys = BlobSeer::new(BlobSeerConfig::for_tests().with_io_parallelism(1));
        let client = sys.client();
        let blob = client.create(Some(16)).unwrap();
        let data = vec![3u8; 16 * 6];
        client.write(blob, 0, &data).unwrap();
        assert_eq!(
            client.read_latest(blob, 0, data.len() as u64).unwrap(),
            data
        );
    }

    #[test]
    fn read_path_batches_and_caches_metadata_round_trips() {
        let sys = BlobSeer::new(BlobSeerConfig::for_tests().with_providers(8));
        let client = sys.client();
        let blob = client.create(Some(16)).unwrap();
        let data = vec![7u8; 16 * 16]; // 16 pages
        client.write(blob, 0, &data).unwrap();
        let after_write = sys.metadata().stats();

        // First read: the cache was pre-warmed by the write's own batch
        // flush, so the whole descent is answered without touching the DHT.
        client.read_latest(blob, 0, data.len() as u64).unwrap();
        let after_read = sys.metadata().stats();
        assert_eq!(
            after_read.dht_read_round_trips, after_write.dht_read_round_trips,
            "a writer reading back its own version must not hit the DHT"
        );
        assert!(after_read.cache_hits >= 31, "full 16-page tree descent");
        assert!(after_read.batch_lookups > after_write.batch_lookups);
    }

    #[test]
    fn uncached_read_path_still_batches_by_tree_level() {
        let sys = BlobSeer::new(
            BlobSeerConfig::for_tests()
                .with_providers(8)
                .with_metadata_cache(false),
        );
        let client = sys.client();
        let blob = client.create(Some(16)).unwrap();
        let data = vec![9u8; 16 * 16]; // 16 pages -> 31-node tree, depth 5
        client.write(blob, 0, &data).unwrap();
        let before = sys.metadata().stats();
        client.read_latest(blob, 0, data.len() as u64).unwrap();
        let after = sys.metadata().stats();
        let read_rts = after.dht_read_round_trips - before.dht_read_round_trips;
        let nodes = after.nodes_read - before.nodes_read;
        assert_eq!(nodes, 31, "full tree visited");
        assert_eq!(after.cache_hits, 0);
        // 5 levels x at most 3 metadata providers, versus 31 per-node gets.
        assert!(
            read_rts <= 15,
            "expected level-batched reads, got {read_rts}"
        );
        assert!((read_rts as f64) < 0.6 * nodes as f64);
    }

    #[test]
    fn empty_write_and_unknown_blob_errors() {
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(None).unwrap();
        assert!(matches!(
            client.write(blob, 0, b""),
            Err(BlobSeerError::InvalidArgument(_))
        ));
        assert!(matches!(
            client.read_latest(BlobId(999), 0, 1),
            Err(BlobSeerError::UnknownBlob(_))
        ));
        assert!(matches!(
            client.create(Some(0)),
            Err(BlobSeerError::InvalidArgument(_))
        ));
    }

    #[test]
    fn delete_blob_removes_it() {
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(None).unwrap();
        client.append(blob, b"x").unwrap();
        client.delete(blob).unwrap();
        assert!(client.size(blob).is_err());
        assert!(sys.page_size_of(blob).is_err());
    }

    #[test]
    fn locate_exposes_page_distribution() {
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(8)).unwrap();
        let v = client.write(blob, 0, &[7u8; 32]).unwrap();
        let locs = client.locate(blob, v, 0, 32).unwrap();
        assert_eq!(locs.len(), 4);
        for (i, loc) in locs.iter().enumerate() {
            assert_eq!(loc.page, i as u64);
            assert_eq!(loc.range.len, 8);
            assert_eq!(loc.providers.len(), 1);
            assert_eq!(loc.nodes.len(), 1);
        }
        // With load-balanced placement over 4 providers, the 4 pages land on
        // 4 distinct providers.
        let unique: std::collections::HashSet<_> = locs.iter().map(|l| l.providers[0]).collect();
        assert_eq!(unique.len(), 4);
        // A sub-range only reports the pages it touches, clamped.
        let locs = client.locate_latest(blob, 10, 10).unwrap();
        assert_eq!(locs.len(), 2);
        assert_eq!(locs[0].range, ByteRange::new(10, 6));
        assert_eq!(locs[1].range, ByteRange::new(16, 4));
        // Empty range locates nothing.
        assert!(client.locate_latest(blob, 0, 0).unwrap().is_empty());
    }

    #[test]
    fn page_replication_survives_provider_failure() {
        let config = BlobSeerConfig::for_tests()
            .with_providers(4)
            .with_page_replication(2);
        let sys = BlobSeer::new(config);
        let client = sys.client();
        let blob = client.create(Some(16)).unwrap();
        let data: Vec<u8> = (0..64u8).collect();
        let v = client.write(blob, 0, &data).unwrap();

        // Kill the primary replica of every page; reads must fail over.
        let locs = client.locate(blob, v, 0, 64).unwrap();
        for loc in &locs {
            sys.provider_manager().kill(loc.providers[0]);
        }
        assert_eq!(client.read(blob, v, 0, 64).unwrap().to_vec(), data);
    }

    #[test]
    fn read_fails_cleanly_when_all_replicas_are_dead() {
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(16)).unwrap();
        let v = client.write(blob, 0, &[1u8; 16]).unwrap();
        for p in sys.provider_manager().providers() {
            p.kill();
        }
        assert!(matches!(
            client.read(blob, v, 0, 16),
            Err(BlobSeerError::PageUnavailable { .. })
        ));
    }

    #[test]
    fn write_fails_when_no_provider_is_alive() {
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(16)).unwrap();
        for p in sys.provider_manager().providers() {
            p.kill();
        }
        assert!(matches!(
            client.write(blob, 0, b"data"),
            Err(BlobSeerError::NoProviders)
        ));
    }

    #[test]
    fn concurrent_writers_to_distinct_blobs() {
        let sys = BlobSeer::new(BlobSeerConfig::for_tests().with_providers(8));
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let client = sys.client_on(sys.topology().node(t as u32 % 8));
            handles.push(std::thread::spawn(move || {
                let blob = client.create(Some(64)).unwrap();
                let data = vec![t; 1024];
                client.write(blob, 0, &data).unwrap();
                assert_eq!(client.read_latest(blob, 0, 1024).unwrap().to_vec(), data);
                blob
            }));
        }
        let blobs: Vec<BlobId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let unique: std::collections::HashSet<_> = blobs.iter().collect();
        assert_eq!(unique.len(), 8, "each thread gets its own blob id");
        assert_eq!(sys.stats().write_ops, 8);
    }

    #[test]
    fn concurrent_appenders_to_the_same_blob_never_lose_data() {
        let sys = BlobSeer::new(BlobSeerConfig::for_tests().with_providers(8));
        let client0 = sys.client();
        // Page size 64, records of 64 bytes: appends are page-aligned.
        let blob = client0.create(Some(64)).unwrap();
        let mut handles = Vec::new();
        for t in 0..6u8 {
            let client = sys.client_on(sys.topology().node(t as u32));
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    client.append(blob, &[t; 64]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 60 appends of 64 bytes each.
        assert_eq!(client0.size(blob).unwrap(), 60 * 64);
        let all = client0.read_latest(blob, 0, 60 * 64).unwrap();
        // Every 64-byte record is uniform (no torn appends) and each writer's
        // records appear exactly 10 times.
        let mut counts = [0usize; 6];
        for rec in all.chunks(64) {
            let tag = rec[0];
            assert!(rec.iter().all(|b| *b == tag), "torn append detected");
            counts[tag as usize] += 1;
        }
        assert!(
            counts.iter().all(|c| *c == 10),
            "lost or duplicated appends: {counts:?}"
        );
        // Version history is gap-free.
        assert_eq!(client0.latest_version(blob).unwrap().version, Version(60));
    }

    #[test]
    fn load_balanced_placement_spreads_pages_of_one_writer() {
        let sys = BlobSeer::new(
            BlobSeerConfig::for_tests()
                .with_providers(8)
                .with_placement(PlacementStrategy::LoadBalanced),
        );
        let client = sys.client();
        let blob = client.create(Some(128)).unwrap();
        client.write(blob, 0, &vec![1u8; 128 * 16]).unwrap();
        let load = sys.provider_manager().allocation_load();
        assert_eq!(load.len(), 8, "all providers should receive pages");
        assert!(load.values().all(|c| *c == 2));
    }

    #[test]
    fn local_first_placement_keeps_pages_on_the_writer_node() {
        let sys = BlobSeer::new(
            BlobSeerConfig::for_tests()
                .with_providers(4)
                .with_placement(PlacementStrategy::LocalFirst),
        );
        let client = sys.client_on(sys.topology().node(2));
        let blob = client.create(Some(128)).unwrap();
        let v = client.write(blob, 0, &vec![1u8; 128 * 8]).unwrap();
        let locs = client.locate(blob, v, 0, 128 * 8).unwrap();
        for loc in locs {
            assert_eq!(loc.nodes[0], sys.topology().node(2));
        }
    }

    #[test]
    fn stats_track_bytes() {
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(32)).unwrap();
        client.write(blob, 0, &[0u8; 100]).unwrap();
        client.read_latest(blob, 0, 100).unwrap();
        let stats = sys.stats();
        assert_eq!(stats.bytes_written, 100);
        assert_eq!(stats.bytes_read, 100);
        assert_eq!(stats.write_ops, 1);
        assert_eq!(stats.read_ops, 1);
    }

    /// Metadata entries in the DHT plus page images on the providers: the
    /// storage the rewrite-loop GC tests assert stays flat.
    fn footprint(sys: &Arc<BlobSeer>) -> (usize, usize) {
        let metadata_entries = sys.metadata().dht().stats().total_entries;
        let pages: usize = sys
            .provider_manager()
            .providers()
            .iter()
            .map(|p| p.stats().pages)
            .sum();
        (metadata_entries, pages)
    }

    #[test]
    fn gc_without_a_policy_is_a_no_op() {
        let sys = small_system();
        let client = sys.client();
        let blob = client.create(Some(4)).unwrap();
        for _ in 0..5 {
            client.write(blob, 0, b"01234567").unwrap();
        }
        let before = footprint(&sys);
        let report = sys.collect_garbage().unwrap();
        assert_eq!(report, crate::gc::GcReport::default());
        assert_eq!(footprint(&sys), before);
        assert_eq!(client.versions(blob).unwrap().len(), 6);
    }

    #[test]
    fn gc_loop_keeps_the_footprint_flat_and_survivors_byte_identical() {
        let sys = BlobSeer::new(BlobSeerConfig::for_tests().with_gc_keep_last(2));
        let client = sys.client();
        let blob = client.create(Some(4)).unwrap();
        let v1 = client.write(blob, 0, b"pinned-snapshot!").unwrap();
        sys.pin_snapshot(blob, v1).unwrap();

        let mut steady = None;
        for round in 0..20u8 {
            let data = vec![b'a' + (round % 26); 32];
            let v = client.write(blob, 0, &data).unwrap();
            let report = sys.collect_garbage().unwrap();
            if round >= 2 {
                // Beyond keep-last-2, every round retires exactly one
                // full-overwrite version and reclaims its tree and pages.
                assert_eq!(report.versions_retired, 1, "round {round}");
                assert!(report.nodes_removed > 0, "round {round}");
                assert!(report.pages_deleted > 0, "round {round}");
            }
            // The rewrite loop must not grow storage: once the retention
            // window fills, the post-GC footprint is constant.
            let now = footprint(&sys);
            match steady {
                None if round >= 2 => steady = Some(now),
                Some(expected) => assert_eq!(now, expected, "footprint grew at round {round}"),
                None => {}
            }
            assert_eq!(&client.read(blob, v, 0, 32).unwrap()[..], &data[..]);
        }

        // The pinned snapshot and the retention window survive, byte-identical.
        assert_eq!(
            &client.read(blob, v1, 0, 16).unwrap()[..],
            b"pinned-snapshot!"
        );
        let survivors = client.versions(blob).unwrap();
        let versions: Vec<Version> = survivors.iter().map(|i| i.version).collect();
        assert_eq!(versions, vec![v1, Version(20), Version(21)]);
        assert_eq!(
            &client.read(blob, Version(20), 0, 32).unwrap()[..],
            &vec![b'a' + 18; 32][..]
        );
        // Retired snapshots are gone for good.
        assert!(matches!(
            client.read(blob, Version(5), 0, 32),
            Err(BlobSeerError::UnknownVersion { .. })
        ));

        // Unpinning frees the snapshot at the next cycle and shrinks storage.
        let before = footprint(&sys);
        assert!(sys.unpin_snapshot(blob, v1).unwrap());
        let report = sys.collect_garbage().unwrap();
        assert_eq!(report.versions_retired, 1);
        let after = footprint(&sys);
        assert!(after.0 < before.0 && after.1 < before.1);
    }

    #[test]
    fn gc_preserves_pages_shared_with_surviving_versions() {
        // Partial overwrites: surviving trees share subtrees with retired
        // ones, and the sweep must not reclaim shared nodes or pages.
        let sys = BlobSeer::new(BlobSeerConfig::for_tests().with_gc_keep_last(1));
        let client = sys.client();
        let blob = client.create(Some(4)).unwrap();
        // v1 writes the whole blob; v2 and v3 each rewrite 4 bytes. After
        // retiring v1 and v2, v3 still resolves untouched pages to v1 images.
        client.write(blob, 0, b"AAAAAAAAAAAAAAAA").unwrap();
        client.write(blob, 4, b"BBBB").unwrap();
        client.write(blob, 8, b"CCCC").unwrap();
        let report = sys.collect_garbage().unwrap();
        // v0 (empty), v1 and v2 all retire; only v3 is within the window.
        assert_eq!(report.versions_retired, 3);
        assert_eq!(
            &client.read_latest(blob, 0, 16).unwrap()[..],
            b"AAAABBBBCCCCAAAA"
        );
        // v1's shared pages survived; only v2's superseded "BBBB" image (and
        // v1's superseded page-1/page-2 images) were reclaimable. The page-1
        // image of v1 was overwritten by v2 which was itself retired — but
        // v2's page-1 leaf is shared by v3, so it must survive.
        assert!(report.pages_deleted >= 1);
    }

    #[test]
    fn background_gc_ticks_on_the_deployment_clock() {
        use simcluster::SimClock;
        let clock = Arc::new(SimClock::new());
        let config = BlobSeerConfig::for_tests()
            .with_gc_keep_last(1)
            .with_gc_interval(Duration::from_secs(5));
        let topology = ClusterTopology::flat(config.providers as u32);
        let nodes: Vec<NodeId> = topology.all_nodes().collect();
        let sys = BlobSeer::with_topology_and_clock(config, &topology, &nodes, clock.clone());
        let client = sys.client();
        let blob = client.create(Some(8)).unwrap();

        // Writes inside the interval never trigger a sweep.
        for _ in 0..5 {
            client.write(blob, 0, b"warmup!!").unwrap();
        }
        assert_eq!(sys.gc_tick_count(), 0);
        let versions_before = client.versions(blob).unwrap().len();
        assert!(versions_before > 2, "retention not yet enforced");

        // Cross the GC deadline on the virtual clock; the next commit kicks
        // off a background sweep on the executor.
        clock.advance(Duration::from_secs(6));
        client.write(blob, 0, b"trigger!").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while sys.gc_tick_count() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "background GC sweep never ran"
            );
            std::thread::yield_now();
        }
        // The sweep applied keep-last-1: only the latest version (plus the
        // possibly-concurrent trigger write) survives.
        assert!(client.versions(blob).unwrap().len() <= 2);
        // Survivor still reads back.
        assert_eq!(&client.read_latest(blob, 0, 8).unwrap()[..], b"trigger!");
    }

    #[test]
    fn gc_interval_is_idle_without_clock_progress() {
        use simcluster::SimClock;
        let clock = Arc::new(SimClock::new());
        let config = BlobSeerConfig::for_tests()
            .with_gc_keep_last(1)
            .with_gc_interval(Duration::from_secs(60));
        let topology = ClusterTopology::flat(config.providers as u32);
        let nodes: Vec<NodeId> = topology.all_nodes().collect();
        let sys = BlobSeer::with_topology_and_clock(config, &topology, &nodes, clock);
        let client = sys.client();
        let blob = client.create(Some(8)).unwrap();
        for _ in 0..10 {
            client.write(blob, 0, b"steady!!").unwrap();
        }
        assert_eq!(sys.gc_tick_count(), 0, "virtual time never advanced");
        assert_eq!(client.versions(blob).unwrap().len(), 11);
    }

    #[test]
    fn writes_survive_a_replica_dying_mid_write() {
        // A provider is killed concurrently with a many-page replicated
        // write. Whatever point of the push the death lands on, the write
        // must commit (skipping or failing over past the dead replica) and
        // every byte must read back through the surviving copies.
        let sys = BlobSeer::new(
            BlobSeerConfig::for_tests()
                .with_providers(4)
                .with_page_replication(2)
                .with_io_parallelism(2),
        );
        let client = sys.client();
        let blob = client.create(Some(16)).unwrap();
        let data: Vec<u8> = (0..16u32 * 64).map(|i| (i % 251) as u8).collect();
        let pm = Arc::clone(sys.provider_manager());
        let killer = std::thread::spawn(move || pm.kill(ProviderId(0)));
        let v = client.write(blob, 0, &data).unwrap();
        killer.join().unwrap();
        assert_eq!(
            client.read(blob, v, 0, data.len() as u64).unwrap().to_vec(),
            data
        );
        // Each stored copy was announced, so repair can police the pages the
        // racing kill left short.
        assert_eq!(sys.provider_manager().announced_pages(), 64);
        let (_, pages) = sys.repair();
        assert_eq!(pages.still_under_replicated, 0);
    }

    #[test]
    fn repair_restores_page_replication_without_revive() {
        let sys = BlobSeer::new(
            BlobSeerConfig::for_tests()
                .with_providers(4)
                .with_page_replication(2),
        );
        let client = sys.client();
        let blob = client.create(Some(16)).unwrap();
        let data: Vec<u8> = (0..64u8).collect();
        let v = client.write(blob, 0, &data).unwrap();

        // Kill one replica of every page; repair must rebuild the factor on
        // the surviving providers, with the victims staying dead.
        let locs = client.locate(blob, v, 0, 64).unwrap();
        let victim = locs[0].providers[0];
        sys.provider_manager().kill(victim);
        let (_, pages) = sys.repair();
        assert!(pages.under_replicated > 0, "the victim's pages were short");
        assert_eq!(pages.still_under_replicated, 0);
        assert!(pages.repaired_copies > 0);

        // Now kill every provider the metadata records for page 0; the read
        // must chase the announced repair copy, which lives outside the
        // recorded set.
        assert_eq!(client.read(blob, v, 0, 64).unwrap().to_vec(), data);
        for pid in &locs[0].providers {
            sys.provider_manager().kill(*pid);
        }
        assert_eq!(
            client.read(blob, v, 0, 16).unwrap().to_vec(),
            data[..16].to_vec(),
            "the repair copy outside the recorded set must serve the read"
        );
    }

    #[test]
    fn background_repair_ticks_on_the_deployment_clock() {
        use simcluster::SimClock;
        let clock = Arc::new(SimClock::new());
        let config = BlobSeerConfig::for_tests()
            .with_providers(4)
            .with_page_replication(2)
            .with_repair_interval(Duration::from_secs(5));
        let topology = ClusterTopology::flat(config.providers as u32);
        let nodes: Vec<NodeId> = topology.all_nodes().collect();
        let sys = BlobSeer::with_topology_and_clock(config, &topology, &nodes, clock.clone());
        let client = sys.client();
        let blob = client.create(Some(16)).unwrap();
        let v = client.write(blob, 0, &[9u8; 64]).unwrap();
        assert_eq!(sys.repair_tick_count(), 0);

        // Unannounced death; cross the repair deadline on the virtual clock.
        let victim = client.locate(blob, v, 0, 64).unwrap()[0].providers[0];
        sys.provider_manager().kill(victim);
        clock.advance(Duration::from_secs(6));
        client.write(blob, 0, b"trigger-page-xx!").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while sys.repair_tick_count() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "background repair pass never ran"
            );
            std::thread::yield_now();
        }
        // The pass restored the factor: a second, synchronous pass finds
        // nothing left to do.
        let (_, pages) = sys.repair();
        assert_eq!(pages.under_replicated, 0);
        assert!(sys.provider_manager().repaired_pages() > 0);
        // The detector knows about the victim without anyone declaring it.
        let det = sys.provider_manager().failure_detector().unwrap();
        assert!(det.failures_detected() >= 1);
    }

    #[test]
    fn retried_page_reads_succeed_once_a_replica_recovers() {
        // Unreplicated page, provider dies, a reviver brings it back while
        // the reader backs off: the read must ride out the outage.
        let sys = BlobSeer::new(
            BlobSeerConfig::for_tests()
                .with_providers(2)
                .with_retry(50, Duration::from_millis(2)),
        );
        let client = sys.client();
        let blob = client.create(Some(16)).unwrap();
        let v = client.write(blob, 0, &[3u8; 16]).unwrap();
        let holder = client.locate(blob, v, 0, 16).unwrap()[0].providers[0];
        sys.provider_manager().kill(holder);
        let pm = Arc::clone(sys.provider_manager());
        let reviver = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            pm.revive(holder);
        });
        assert_eq!(client.read(blob, v, 0, 16).unwrap().to_vec(), vec![3u8; 16]);
        reviver.join().unwrap();
    }

    #[test]
    fn adaptive_readahead_reacts_to_the_workload() {
        let sys = BlobSeer::new(
            BlobSeerConfig::for_tests()
                .with_providers(4)
                .with_metadata_readahead(8)
                .with_adaptive_readahead(true),
        );
        let client = sys.client();
        let blob = client.create(Some(16)).unwrap();
        let data = vec![5u8; 16 * 64];
        client.write(blob, 0, &data).unwrap();
        assert_eq!(sys.readahead_window(), 8, "starts at the configured max");
        // A sequential scan through a cold cache turns prefetches into hits
        // and never wastes them: the window must not collapse.
        sys.metadata().drop_cached_nodes();
        for page in 0..64u64 {
            client.read_latest(blob, page * 16, 16).unwrap();
        }
        assert!(sys.readahead_window() >= 1);
        let stats = sys.metadata().stats();
        assert!(stats.prefetch_hits > 0, "scan must exercise read-ahead");
    }

    #[test]
    fn ranged_reads_move_fewer_bytes_than_whole_pages() {
        let data: Vec<u8> = (0..255u8).cycle().take(4096).collect();
        let run = |ranged: bool| {
            let sys = BlobSeer::new(
                BlobSeerConfig::for_tests()
                    .with_page_size(1024)
                    .with_ranged_reads(ranged),
            );
            let client = sys.client();
            let blob = client.create(None).unwrap();
            client.write(blob, 0, &data).unwrap();
            let before = sys.provider_wire().snapshot();
            // 16-byte probes at unaligned offsets across every page.
            for i in 0..16u64 {
                let off = i * 256 + 100;
                assert_eq!(
                    client.read_latest(blob, off, 16).unwrap().to_vec(),
                    data[off as usize..off as usize + 16].to_vec()
                );
            }
            sys.provider_wire().snapshot().since(&before)
        };
        let whole = run(false);
        let ranged = run(true);
        // Whole-page mode ships 1 KiB per probe; ranged ships 16 bytes plus
        // framing — comfortably over the 40% cut the issue asks for.
        assert!(
            ranged.bytes_received * 5 <= whole.bytes_received,
            "ranged {} vs whole {}",
            ranged.bytes_received,
            whole.bytes_received
        );
        assert_eq!(ranged.messages, whole.messages);
    }

    #[test]
    fn coalesced_reads_pay_one_exchange_per_destination() {
        let data = vec![7u8; 64 * 32];
        let run = |coalesce: bool| {
            let sys = BlobSeer::new(
                BlobSeerConfig::for_tests()
                    .with_page_size(64)
                    .with_providers(4)
                    .with_coalesced_reads(coalesce),
            );
            let client = sys.client();
            let blob = client.create(None).unwrap();
            client.write(blob, 0, &data).unwrap();
            let before = sys.provider_wire().snapshot();
            let got = client.read_latest(blob, 0, data.len() as u64).unwrap();
            assert_eq!(got.to_vec(), data);
            sys.provider_wire().snapshot().since(&before)
        };
        let naive = run(false);
        let coalesced = run(true);
        // 32 pages spread over 4 providers: naive pays one message per page,
        // coalesced one per provider; both move the same payload bytes.
        assert_eq!(naive.read_messages, 32);
        assert!(
            coalesced.read_messages <= 4,
            "coalesced used {} messages",
            coalesced.read_messages
        );
        assert_eq!(
            coalesced.bytes_received,
            naive.bytes_received - 28 * MSG_OVERHEAD
        );
    }

    #[test]
    fn per_blob_gc_retention_override_collects_without_global_policy() {
        // No deployment-wide gc_keep_last: only the overridden blob is
        // eligible for collection.
        let sys = small_system();
        let client = sys.client();
        let kept = client.create(Some(64)).unwrap();
        let trimmed = client.create(Some(64)).unwrap();
        for i in 0..4 {
            client.write(kept, 0, &[i as u8; 64]).unwrap();
            client.write(trimmed, 0, &[i as u8; 64]).unwrap();
        }
        assert!(sys.collect_garbage().unwrap().versions_retired == 0);

        sys.with_gc_keep_last_for(trimmed, 1);
        let report = sys.collect_garbage().unwrap();
        assert!(
            report.versions_retired >= 3,
            "retired {}",
            report.versions_retired
        );
        assert_eq!(client.versions(kept).unwrap().len(), 5); // v0..v4 intact
        assert_eq!(client.versions(trimmed).unwrap().len(), 1);
        // The override is droppable; afterwards nothing further is retired.
        assert!(sys.clear_gc_keep_last_for(trimmed));
        assert!(!sys.clear_gc_keep_last_for(trimmed));
        client.write(trimmed, 0, &[9u8; 64]).unwrap();
        assert_eq!(sys.collect_garbage().unwrap().versions_retired, 0);
    }

    #[test]
    fn override_tightens_the_global_policy_per_blob() {
        let sys = BlobSeer::new(BlobSeerConfig::for_tests().with_gc_keep_last(3));
        let client = sys.client();
        let blob = client.create(Some(64)).unwrap();
        for i in 0..5 {
            client.write(blob, 0, &[i as u8; 64]).unwrap();
        }
        sys.with_gc_keep_last_for(blob, 1);
        sys.collect_garbage().unwrap();
        assert_eq!(client.versions(blob).unwrap().len(), 1);
    }

    #[test]
    fn doc_example_from_lib_rs() {
        // Mirror of the lib.rs doctest, kept as a unit test so failures are
        // easier to localise.
        let system = BlobSeer::new(BlobSeerConfig::for_tests());
        let client = system.client();
        let blob = client.create(None).unwrap();
        let v1 = client.append(blob, b"hello ").unwrap();
        let v2 = client.append(blob, b"world").unwrap();
        assert_eq!(
            &client.read_latest(blob, 0, 11).unwrap()[..],
            b"hello world"
        );
        assert_eq!(&client.read(blob, v1, 0, 6).unwrap()[..], b"hello ");
        assert!(v2 > v1);
    }
}
