//! Failure injection schedules.
//!
//! BlobSeer tolerates provider failures through page-level replication and
//! HDFS through chunk replication; the integration tests and some ablation
//! benches need a way to declare "node X dies at virtual time T" and query
//! liveness. The schedule is immutable during a run so that experiments stay
//! deterministic and reproducible.
//!
//! [`FailureSchedule`] models the one-shot case: each node fails at most
//! once and never comes back. [`ChurnSchedule`] extends that to *churn* —
//! an ordered stream of kill **and** join events at a configurable rate, the
//! regime the repair loop has to survive. The schedule only fixes *when*
//! events happen and of *which kind*; the harness applying it decides which
//! live node a kill lands on (it knows current membership), keeping the
//! schedule independent of how membership evolves.

use crate::time::SimTime;
use crate::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A set of node failures planned at fixed virtual times.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FailureSchedule {
    failures: HashMap<NodeId, SimTime>,
}

impl FailureSchedule {
    /// A schedule with no failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedule `node` to fail at `when`. If the node was already scheduled,
    /// the earlier time wins (a node cannot fail twice).
    pub fn fail_at(mut self, node: NodeId, when: SimTime) -> Self {
        self.failures
            .entry(node)
            .and_modify(|t| {
                if when < *t {
                    *t = when;
                }
            })
            .or_insert(when);
        self
    }

    /// Schedule several nodes to fail at the same time.
    pub fn fail_all_at(mut self, nodes: impl IntoIterator<Item = NodeId>, when: SimTime) -> Self {
        for n in nodes {
            self = self.fail_at(n, when);
        }
        self
    }

    /// Is `node` alive at virtual time `t`? A node is alive strictly before
    /// its failure time.
    pub fn is_alive(&self, node: NodeId, t: SimTime) -> bool {
        match self.failures.get(&node) {
            Some(fail_time) => t < *fail_time,
            None => true,
        }
    }

    /// The failure time of `node`, if any.
    pub fn failure_time(&self, node: NodeId) -> Option<SimTime> {
        self.failures.get(&node).copied()
    }

    /// Nodes that are dead at time `t`.
    pub fn dead_at(&self, t: SimTime) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .failures
            .iter()
            .filter(|(_, when)| **when <= t)
            .map(|(n, _)| *n)
            .collect();
        v.sort();
        v
    }

    /// Number of scheduled failures.
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// True when no failures are scheduled.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }
}

/// What happens at one churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEventKind {
    /// A currently-live node crashes (the harness picks the victim).
    Kill,
    /// A fresh node joins the ring.
    Join,
}

/// One scheduled membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Virtual time at which the event fires.
    pub at: SimTime,
    pub kind: ChurnEventKind,
}

/// A deterministic stream of kill/join events on the virtual timeline.
///
/// Built either explicitly ([`ChurnSchedule::event_at`]), from a
/// [`FailureSchedule`] (kills only), or generated at a uniform rate with a
/// seeded xorshift mix of kills and joins ([`ChurnSchedule::uniform`]).
/// Events are kept sorted by time; a harness drains them with
/// [`ChurnSchedule::events_between`] as its clock advances.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// A schedule with no events.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add one event (builder-style); keeps the stream time-ordered.
    pub fn event_at(mut self, at: SimTime, kind: ChurnEventKind) -> Self {
        self.events.push(ChurnEvent { at, kind });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Lift a one-shot [`FailureSchedule`] into a churn stream of kills.
    pub fn from_failures(failures: &FailureSchedule) -> Self {
        let mut s = Self::none();
        for when in failures.failures.values() {
            s = s.event_at(*when, ChurnEventKind::Kill);
        }
        s
    }

    /// Generate `count` events uniformly spaced `every` apart starting at
    /// `every` (not at time zero: the workload gets a head start), with the
    /// kill/join mix decided by a seeded xorshift64* stream so runs are
    /// reproducible. Roughly `kill_per_mille`/1000 of the events are kills,
    /// the rest joins.
    pub fn uniform(
        count: usize,
        every: crate::time::SimDuration,
        kill_per_mille: u32,
        seed: u64,
    ) -> Self {
        // xorshift must not start at 0; any non-zero mix keeps seeds distinct.
        let mut state = if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        };
        let mut events = Vec::with_capacity(count);
        let step = every.as_micros();
        for i in 0..count {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let roll = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) % 1000;
            let kind = if (roll as u32) < kill_per_mille {
                ChurnEventKind::Kill
            } else {
                ChurnEventKind::Join
            };
            events.push(ChurnEvent {
                at: SimTime::from_micros(step.saturating_mul(i as u64 + 1)),
                kind,
            });
        }
        ChurnSchedule { events }
    }

    /// Events with `from < at <= to`, in time order — the half-open window a
    /// harness applies after advancing its clock from `from` to `to`.
    pub fn events_between(&self, from: SimTime, to: SimTime) -> Vec<ChurnEvent> {
        self.events
            .iter()
            .filter(|e| e.at > from && e.at <= to)
            .copied()
            .collect()
    }

    /// All events, in time order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Kills scheduled over the whole stream.
    pub fn kill_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Kill)
            .count()
    }

    /// Joins scheduled over the whole stream.
    pub fn join_count(&self) -> usize {
        self.events.len() - self.kill_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_keeps_everything_alive() {
        let s = FailureSchedule::none();
        assert!(s.is_empty());
        assert!(s.is_alive(NodeId(0), SimTime::from_secs(1_000_000)));
        assert!(s.dead_at(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn node_dies_at_its_time() {
        let s = FailureSchedule::none().fail_at(NodeId(3), SimTime::from_secs(10));
        assert!(s.is_alive(NodeId(3), SimTime::from_secs(9)));
        assert!(!s.is_alive(NodeId(3), SimTime::from_secs(10)));
        assert!(!s.is_alive(NodeId(3), SimTime::from_secs(11)));
        assert_eq!(s.failure_time(NodeId(3)), Some(SimTime::from_secs(10)));
        assert_eq!(s.failure_time(NodeId(4)), None);
    }

    #[test]
    fn earlier_failure_time_wins() {
        let s = FailureSchedule::none()
            .fail_at(NodeId(1), SimTime::from_secs(20))
            .fail_at(NodeId(1), SimTime::from_secs(5))
            .fail_at(NodeId(1), SimTime::from_secs(50));
        assert_eq!(s.failure_time(NodeId(1)), Some(SimTime::from_secs(5)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn group_failure_and_dead_listing() {
        let s = FailureSchedule::none()
            .fail_all_at(vec![NodeId(2), NodeId(0)], SimTime::from_secs(7))
            .fail_at(NodeId(5), SimTime::from_secs(100));
        let dead = s.dead_at(SimTime::from_secs(8));
        assert_eq!(dead, vec![NodeId(0), NodeId(2)]);
        assert_eq!(s.dead_at(SimTime::from_secs(200)).len(), 3);
    }

    #[test]
    fn churn_events_stay_time_ordered() {
        let s = ChurnSchedule::none()
            .event_at(SimTime::from_secs(30), ChurnEventKind::Join)
            .event_at(SimTime::from_secs(10), ChurnEventKind::Kill)
            .event_at(SimTime::from_secs(20), ChurnEventKind::Kill);
        let times: Vec<u64> = s.events().iter().map(|e| e.at.as_micros()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s.kill_count(), 2);
        assert_eq!(s.join_count(), 1);
    }

    #[test]
    fn events_between_is_half_open_and_drains_exactly_once() {
        let s = ChurnSchedule::none()
            .event_at(SimTime::from_secs(1), ChurnEventKind::Kill)
            .event_at(SimTime::from_secs(2), ChurnEventKind::Join)
            .event_at(SimTime::from_secs(3), ChurnEventKind::Kill);
        // Walk the timeline in steps; every event must fire exactly once.
        let mut seen = 0;
        let mut prev = SimTime::from_secs(0);
        for t in 1..=4u64 {
            let now = SimTime::from_secs(t);
            seen += s.events_between(prev, now).len();
            prev = now;
        }
        assert_eq!(seen, 3);
        // The boundary event belongs to the window that *reaches* it.
        assert_eq!(
            s.events_between(SimTime::from_secs(0), SimTime::from_secs(1))
                .len(),
            1
        );
        assert!(s
            .events_between(SimTime::from_secs(1), SimTime::from_secs(1))
            .is_empty());
    }

    #[test]
    fn uniform_generation_is_deterministic_and_respects_the_mix() {
        let a = ChurnSchedule::uniform(100, crate::time::SimDuration::from_millis(500), 500, 42);
        let b = ChurnSchedule::uniform(100, crate::time::SimDuration::from_millis(500), 500, 42);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.len(), 100);
        // Events start after time zero and are uniformly spaced.
        assert_eq!(a.events()[0].at, SimTime::from_micros(500_000));
        assert_eq!(a.events()[99].at, SimTime::from_micros(50_000_000));
        // A 50% mix lands near half kills (seeded, so this is a fixed value,
        // but keep the band loose for clarity about intent).
        assert!(a.kill_count() > 30 && a.kill_count() < 70);
        // A different seed reshuffles the kinds.
        let c = ChurnSchedule::uniform(100, crate::time::SimDuration::from_millis(500), 500, 43);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn from_failures_lifts_kills_only() {
        let f = FailureSchedule::none()
            .fail_at(NodeId(1), SimTime::from_secs(5))
            .fail_at(NodeId(2), SimTime::from_secs(3));
        let s = ChurnSchedule::from_failures(&f);
        assert_eq!(s.len(), 2);
        assert_eq!(s.join_count(), 0);
        assert_eq!(s.events()[0].at, SimTime::from_secs(3));
    }
}
