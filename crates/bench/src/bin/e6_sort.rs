//! E6 — shuffle-heavy workloads through the storage layer: Distributed Sort
//! (TeraSort-style) and word count with/without a combiner, BSFS vs HDFS.
//!
//! Unlike E4/E5 (whose jobs only touch storage for input and output), every
//! input byte of the sort crosses the shuffle: map tasks spill sorted,
//! partition-bucketed files through `DistFs`, and reducers pull their
//! partition's segment from every map file with positioned reads. The
//! shuffle counters reported here are therefore a *storage* workload
//! comparison — lots of concurrent small files and positioned reads, the
//! access pattern the paper's BlobSeer layer is built for.
//!
//! `BENCH_SMOKE=1` shrinks everything to a does-it-run configuration (CI).

use mapreduce::DistFs;
use simcluster::metrics::completion_table;
use workloads::TextGenerator;

fn main() {
    let smoke = bench::smoke_mode();
    let (lines, reducers, split_size) = if smoke {
        (1_000, 2, 4 * 1024)
    } else {
        (50_000, 4, 256 * 1024)
    };
    let block = 1u64 << 20;
    let (bsfs, hdfs) = bench::app_backends(block);

    let mut generator = TextGenerator::new(2026);
    let text = generator.sentences(lines);

    println!("== E6: Distributed Sort ({lines} lines, {reducers} reducers) ==");
    let mut records = Vec::new();
    for fs in [&bsfs as &dyn DistFs, &hdfs as &dyn DistFs] {
        fs.write_file("/input/unsorted.txt", text.as_bytes())
            .unwrap();
        let job = workloads::distributed_sort_job(
            fs,
            vec!["/input/unsorted.txt".into()],
            "/sort-out",
            reducers,
            split_size,
        )
        .expect("sampling the sort input");
        let (result, rec) = bench::run_job_on(fs, &bench::app_topology(), &job);

        // Verify the total order before reporting anything.
        let mut merged = Vec::new();
        for part in &result.output_files {
            let content = fs.read_file(part).unwrap();
            merged.extend(
                String::from_utf8_lossy(&content)
                    .lines()
                    .map(str::to_string),
            );
        }
        assert!(
            merged.windows(2).all(|w| w[0] <= w[1]),
            "{}: concatenated partitions must be globally sorted",
            rec.system
        );
        assert_eq!(merged.len(), text.lines().count());

        println!("{}", bench::shuffle_report(&result));
        records.push(rec);
    }
    println!();
    print!("{}", completion_table(&records));
    println!();

    println!("== E6: word count combiner ablation (shuffle bytes, BSFS vs HDFS) ==");
    for fs in [&bsfs as &dyn DistFs, &hdfs as &dyn DistFs] {
        for (label, combining) in [("plain    ", false), ("combining", true)] {
            let out = format!("/wc-{label}", label = label.trim());
            let input = vec!["/input/unsorted.txt".to_string()];
            let job = if combining {
                workloads::word_count_job_combining(input, &out, reducers, split_size)
            } else {
                workloads::word_count_job(input, &out, reducers, split_size)
            };
            let (result, _) = bench::run_job_on(fs, &bench::app_topology(), &job);
            println!("{label} {}", bench::shuffle_report(&result));
        }
    }
    println!();

    // Merge-spill compaction ablation: the same sort, through BSFS, with the
    // background compactor off and on. With compaction on, each reducer
    // fetches a handful of merged runs instead of one segment per map task,
    // so the positioned reads per reduce task must drop by at least half.
    println!("== E6: merge-spill compaction ablation (BSFS) ==");
    #[derive(serde::Serialize)]
    struct CompactionRow {
        label: String,
        maps: usize,
        reducers: usize,
        segments_fetched: u64,
        positioned_reads: u64,
        positioned_reads_per_reduce: f64,
        merge_runs: u64,
        compaction_runs: u64,
        compaction_merged_spills: u64,
        compaction_bytes: u64,
    }
    let mut compaction_rows = Vec::new();
    let mut outputs: Vec<Vec<u8>> = Vec::new();
    for (label, threshold) in [("compaction off", None), ("compaction on ", Some(0))] {
        let out = format!("/sort-{label}", label = label.trim().replace(' ', "-"));
        let mut job = workloads::distributed_sort_job(
            &bsfs,
            vec!["/input/unsorted.txt".into()],
            &out,
            reducers,
            split_size,
        )
        .expect("sampling the sort input");
        job.config.compaction_threshold = threshold;
        let (result, _) = bench::run_job_on(&bsfs, &bench::app_topology(), &job);
        let mut merged = Vec::new();
        for part in &result.output_files {
            merged.extend_from_slice(&bsfs.read_file(part).unwrap());
        }
        outputs.push(merged);
        let s = &result.shuffle;
        let per_reduce = s.shuffle_read_round_trips as f64 / result.reduce_tasks as f64;
        println!(
            "{label}: {} segments fetched over {} positioned reads \
             ({per_reduce:.1}/reduce), {} merged runs from {} spills",
            s.segments_fetched,
            s.shuffle_read_round_trips,
            s.compaction_runs,
            s.compaction_merged_spills,
        );
        compaction_rows.push(CompactionRow {
            label: label.trim().to_string(),
            maps: result.map_tasks,
            reducers: result.reduce_tasks,
            segments_fetched: s.segments_fetched,
            positioned_reads: s.shuffle_read_round_trips,
            positioned_reads_per_reduce: per_reduce,
            merge_runs: s.merge_runs,
            compaction_runs: s.compaction_runs,
            compaction_merged_spills: s.compaction_merged_spills,
            compaction_bytes: s.compaction_bytes,
        });
    }
    assert_eq!(
        outputs[0], outputs[1],
        "compaction must not change the job output"
    );
    assert!(
        compaction_rows[1].positioned_reads_per_reduce
            <= 0.5 * compaction_rows[0].positioned_reads_per_reduce,
        "compaction must at least halve the positioned reads per reduce task \
         ({:.1} -> {:.1})",
        compaction_rows[0].positioned_reads_per_reduce,
        compaction_rows[1].positioned_reads_per_reduce,
    );
    println!(
        "compaction cut positioned reads per reduce task by {:.1}% \
         ({:.1} -> {:.1})",
        100.0
            * (1.0
                - compaction_rows[1].positioned_reads_per_reduce
                    / compaction_rows[0].positioned_reads_per_reduce),
        compaction_rows[0].positioned_reads_per_reduce,
        compaction_rows[1].positioned_reads_per_reduce,
    );

    #[derive(serde::Serialize)]
    struct Snapshot {
        experiment: &'static str,
        smoke: bool,
        compaction: Vec<CompactionRow>,
    }
    bench::emit_bench_json(
        "E6",
        &Snapshot {
            experiment: "E6",
            smoke,
            compaction: compaction_rows,
        },
    );
}
