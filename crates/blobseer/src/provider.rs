//! Data providers: the nodes that store pages.
//!
//! "The providers store the pages, as assigned by the provider manager"
//! (paper §III-A). A provider wraps a [`PageStore`] backend (in-memory or the
//! durable log-structured store), knows which cluster node it runs on (for
//! locality-aware scheduling and the network model), counts its traffic, and
//! can be killed/revived for fault-tolerance experiments.
//!
//! The store, liveness flag and counters live single-threaded inside a
//! message-loop actor; the `Provider` the rest of the system holds is a thin
//! handle enqueueing commands on the mailbox. Mailbox FIFO preserves the
//! kill-then-put ordering callers rely on.
//!
//! A dead provider *refuses* data operations rather than silently absorbing
//! them — callers discover the death as an error, the way a broken socket
//! would surface it. [`Provider::ping`] is the cheap liveness probe the
//! failure detector and the repair pass use.

use crate::error::{BlobResult, BlobSeerError};
use crate::types::{BlobId, ProviderId, Version};
use bytes::Bytes;
use kvstore::{MemStore, PageStore};
use miniexec::{actor, oneshot};
use simcluster::NodeId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Build the storage key under which a page is kept on a provider.
///
/// Pages are immutable once written (BlobSeer never overwrites data), so the
/// key embeds the version that created the page.
pub fn page_key(blob: BlobId, version: Version, page_index: u64) -> Vec<u8> {
    format!("{}/{}/page-{}", blob, version, page_index).into_bytes()
}

/// Traffic and storage counters for one provider.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProviderStats {
    /// Number of pages currently stored.
    pub pages: usize,
    /// Bytes currently stored.
    pub stored_bytes: u64,
    /// Total pages written since start (monotonic).
    pub writes: u64,
    /// Total pages served since start (monotonic).
    pub reads: u64,
    /// Total bytes written since start (monotonic).
    pub bytes_written: u64,
    /// Total bytes served since start (monotonic).
    pub bytes_read: u64,
}

/// One page fetch inside a coalesced [`Provider::download_many`] batch.
#[derive(Debug, Clone)]
pub struct PageRequest {
    /// Storage key of the page.
    pub key: Vec<u8>,
    /// First byte wanted within the stored page.
    pub offset: u64,
    /// Bytes wanted from `offset`; `None` means "through the end".
    pub len: Option<u64>,
}

/// Commands understood by the provider actor, shaped like a blob wire
/// protocol: `Upload` / `Download(key, offset, len)` / `Query` / `Delete`,
/// plus the coalesced `DownloadMany` batch and the control probes.
enum ProviderMsg {
    Upload {
        key: Vec<u8>,
        data: Bytes,
        reply: oneshot::Sender<BlobResult<()>>,
    },
    /// Ranged streaming read: serve `[offset, offset + len)` of the stored
    /// page (clamped to what is stored; `len: None` means "through the
    /// end"). A whole-page fetch is `offset 0, len None`.
    Download {
        key: Vec<u8>,
        offset: u64,
        len: Option<u64>,
        reply: oneshot::Sender<BlobResult<Option<Bytes>>>,
    },
    /// Several downloads folded into one mailbox message (one wire exchange
    /// when a transport is charged in front of the mailbox).
    DownloadMany {
        requests: Vec<PageRequest>,
        reply: oneshot::Sender<BlobResult<Vec<Option<Bytes>>>>,
    },
    /// Existence/size probe: the stored length of the page, without moving
    /// its bytes. Does not count as served traffic.
    Query {
        key: Vec<u8>,
        reply: oneshot::Sender<BlobResult<Option<u64>>>,
    },
    Delete {
        key: Vec<u8>,
        reply: oneshot::Sender<BlobResult<bool>>,
    },
    /// Liveness probe: answers through the mailbox, so it observes any
    /// kill/revive enqueued before it. Does not count as served traffic.
    Ping(oneshot::Sender<bool>),
    Stats(oneshot::Sender<ProviderStats>),
    Kill(oneshot::Sender<()>),
    Revive(oneshot::Sender<()>),
}

/// The actor's single-threaded state: plain fields, no shared locks.
struct ProviderState {
    store: Arc<dyn PageStore>,
    alive: bool,
    alive_mirror: Arc<AtomicBool>,
    writes: u64,
    reads: u64,
    bytes_written: u64,
    bytes_read: u64,
}

impl ProviderState {
    fn handle(&mut self, msg: ProviderMsg) {
        match msg {
            ProviderMsg::Upload { key, data, reply } => {
                let _ = reply.send(self.put(&key, data));
            }
            ProviderMsg::Download {
                key,
                offset,
                len,
                reply,
            } => {
                let _ = reply.send(self.download(&key, offset, len));
            }
            ProviderMsg::DownloadMany { requests, reply } => {
                let _ = reply.send(self.download_many(&requests));
            }
            ProviderMsg::Query { key, reply } => {
                let _ = reply.send(self.query(&key));
            }
            ProviderMsg::Delete { key, reply } => {
                let _ = reply.send(self.delete(&key));
            }
            ProviderMsg::Ping(reply) => {
                let _ = reply.send(self.alive);
            }
            ProviderMsg::Stats(reply) => {
                let _ = reply.send(ProviderStats {
                    pages: self.store.len(),
                    stored_bytes: self.store.data_bytes(),
                    writes: self.writes,
                    reads: self.reads,
                    bytes_written: self.bytes_written,
                    bytes_read: self.bytes_read,
                });
            }
            ProviderMsg::Kill(done) => {
                self.alive = false;
                self.alive_mirror.store(false, Ordering::Release);
                let _ = done.send(());
            }
            ProviderMsg::Revive(done) => {
                self.alive = true;
                self.alive_mirror.store(true, Ordering::Release);
                let _ = done.send(());
            }
        }
    }

    fn put(&mut self, key: &[u8], data: Bytes) -> BlobResult<()> {
        if !self.alive {
            return Err(BlobSeerError::Storage(kvstore::KvError::Closed));
        }
        self.writes += 1;
        self.bytes_written += data.len() as u64;
        self.store.put(key, data)?;
        Ok(())
    }

    fn download(&mut self, key: &[u8], offset: u64, len: Option<u64>) -> BlobResult<Option<Bytes>> {
        if !self.alive {
            return Err(BlobSeerError::Storage(kvstore::KvError::Closed));
        }
        let Some(page) = self.store.get(key)? else {
            return Ok(None);
        };
        // Clamp the requested window to what is stored: the caller knows the
        // page's valid length and pads/truncates; the provider only ever
        // ships bytes it holds.
        let start = usize::try_from(offset)
            .unwrap_or(usize::MAX)
            .min(page.len());
        let end = match len {
            Some(l) => start
                .saturating_add(usize::try_from(l).unwrap_or(usize::MAX))
                .min(page.len()),
            None => page.len(),
        };
        let piece = page.slice(start..end);
        self.reads += 1;
        self.bytes_read += piece.len() as u64;
        Ok(Some(piece))
    }

    fn download_many(&mut self, requests: &[PageRequest]) -> BlobResult<Vec<Option<Bytes>>> {
        // One liveness check covers the batch; per-entry misses are `None`.
        if !self.alive {
            return Err(BlobSeerError::Storage(kvstore::KvError::Closed));
        }
        requests
            .iter()
            .map(|r| self.download(&r.key, r.offset, r.len))
            .collect()
    }

    fn query(&mut self, key: &[u8]) -> BlobResult<Option<u64>> {
        if !self.alive {
            return Err(BlobSeerError::Storage(kvstore::KvError::Closed));
        }
        Ok(self.store.get(key)?.map(|p| p.len() as u64))
    }

    fn delete(&mut self, key: &[u8]) -> BlobResult<bool> {
        if !self.alive {
            return Err(BlobSeerError::Storage(kvstore::KvError::Closed));
        }
        Ok(self.store.delete(key)?)
    }
}

/// One data provider.
pub struct Provider {
    id: ProviderId,
    node: NodeId,
    handle: actor::Handle<ProviderMsg>,
    alive: Arc<AtomicBool>,
}

/// A dead actor means the reply channel is dropped; surface that the same
/// way a dead provider surfaces: the component is not serving.
fn actor_gone<T>(_: oneshot::Canceled) -> BlobResult<T> {
    Err(BlobSeerError::Storage(kvstore::KvError::Closed))
}

impl Provider {
    /// Create a provider backed by an in-memory store.
    pub fn in_memory(id: ProviderId, node: NodeId) -> Self {
        Self::with_store(id, node, Arc::new(MemStore::new()))
    }

    /// Create a provider backed by an arbitrary page store (e.g. a
    /// [`kvstore::LogStore`] for durability).
    pub fn with_store(id: ProviderId, node: NodeId, store: Arc<dyn PageStore>) -> Self {
        let alive = Arc::new(AtomicBool::new(true));
        let state = ProviderState {
            store,
            alive: true,
            alive_mirror: Arc::clone(&alive),
            writes: 0,
            reads: 0,
            bytes_written: 0,
            bytes_read: 0,
        };
        let handle = actor::spawn(&format!("provider-{}", id.0), state, ProviderState::handle);
        Provider {
            id,
            node,
            handle,
            alive,
        }
    }

    /// This provider's id.
    pub fn id(&self) -> ProviderId {
        self.id
    }

    /// The cluster node this provider runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Is the provider serving requests? (Lock-free mirror read; the
    /// authoritative flag lives with the state and gates every operation.)
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Liveness probe through the mailbox: `true` when the provider is
    /// serving. This is the authoritative check the failure detector and the
    /// repair pass use; unlike [`Provider::is_alive`] it is serialized with
    /// every kill/revive that was enqueued before it.
    pub fn ping(&self) -> bool {
        self.handle.call(ProviderMsg::Ping).unwrap_or(false)
    }

    /// Simulate a crash. The underlying store keeps its data so that a
    /// revive models a restart from persistent storage. Serialized through
    /// the mailbox, so operations enqueued after the kill observe the dead
    /// state.
    pub fn kill(&self) {
        let _ = self.handle.call(ProviderMsg::Kill);
    }

    /// Bring the provider back online.
    pub fn revive(&self) {
        let _ = self.handle.call(ProviderMsg::Revive);
    }

    /// Store a page (the wire protocol's `Upload`). Fails if the provider is
    /// down.
    pub fn put_page(&self, key: &[u8], data: Bytes) -> BlobResult<()> {
        self.handle
            .call(|reply| ProviderMsg::Upload {
                key: key.to_vec(),
                data,
                reply,
            })
            .unwrap_or_else(actor_gone)
    }

    /// Fetch a whole page (`Download` with `offset 0, len None`). Returns
    /// `Ok(None)` when the provider is up but does not hold the page, and an
    /// error when the provider is down.
    pub fn get_page(&self, key: &[u8]) -> BlobResult<Option<Bytes>> {
        self.download_page(key, 0, None)
    }

    /// Ranged streaming read (`Download(key, offset, len)`): serve only
    /// `[offset, offset + len)` of the stored page, clamped to what is
    /// stored; `len: None` means "through the end". Returns `Ok(None)` for a
    /// page the provider does not hold.
    pub fn download_page(
        &self,
        key: &[u8],
        offset: u64,
        len: Option<u64>,
    ) -> BlobResult<Option<Bytes>> {
        self.handle
            .call(|reply| ProviderMsg::Download {
                key: key.to_vec(),
                offset,
                len,
                reply,
            })
            .unwrap_or_else(actor_gone)
    }

    /// Several ranged downloads folded into one mailbox message — the
    /// coalesced shape: one wire exchange per destination per flush. Returns
    /// one slot per request, in order.
    pub fn download_many(&self, requests: Vec<PageRequest>) -> BlobResult<Vec<Option<Bytes>>> {
        self.handle
            .call(|reply| ProviderMsg::DownloadMany { requests, reply })
            .unwrap_or_else(actor_gone)
    }

    /// `Query(key)`: the stored length of a page without moving its bytes.
    pub fn query_page(&self, key: &[u8]) -> BlobResult<Option<u64>> {
        self.handle
            .call(|reply| ProviderMsg::Query {
                key: key.to_vec(),
                reply,
            })
            .unwrap_or_else(actor_gone)
    }

    /// Delete a page (used by version garbage collection).
    pub fn delete_page(&self, key: &[u8]) -> BlobResult<bool> {
        self.handle
            .call(|reply| ProviderMsg::Delete {
                key: key.to_vec(),
                reply,
            })
            .unwrap_or_else(actor_gone)
    }

    /// Current counters.
    pub fn stats(&self) -> ProviderStats {
        self.handle.call(ProviderMsg::Stats).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_key_is_unique_per_blob_version_page() {
        let a = page_key(BlobId(1), Version(2), 3);
        let b = page_key(BlobId(1), Version(2), 4);
        let c = page_key(BlobId(1), Version(3), 3);
        let d = page_key(BlobId(2), Version(2), 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(String::from_utf8(a).unwrap(), "blob-1/v2/page-3");
    }

    #[test]
    fn put_get_delete_and_stats() {
        let p = Provider::in_memory(ProviderId(0), NodeId(0));
        assert_eq!(p.id(), ProviderId(0));
        assert_eq!(p.node(), NodeId(0));
        let key = page_key(BlobId(0), Version(1), 0);
        p.put_page(&key, Bytes::from(vec![7u8; 100])).unwrap();
        let got = p.get_page(&key).unwrap().unwrap();
        assert_eq!(got.len(), 100);
        assert!(p.get_page(b"missing").unwrap().is_none());

        let s = p.stats();
        assert_eq!(s.pages, 1);
        assert_eq!(s.stored_bytes, 100);
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_read, 100);

        assert!(p.delete_page(&key).unwrap());
        assert_eq!(p.stats().pages, 0);
    }

    #[test]
    fn ranged_download_serves_only_the_window() {
        let p = Provider::in_memory(ProviderId(0), NodeId(0));
        let key = page_key(BlobId(0), Version(1), 0);
        let data: Vec<u8> = (0..100u8).collect();
        p.put_page(&key, Bytes::from(data.clone())).unwrap();

        let mid = p.download_page(&key, 10, Some(20)).unwrap().unwrap();
        assert_eq!(&mid[..], &data[10..30]);
        let tail = p.download_page(&key, 90, None).unwrap().unwrap();
        assert_eq!(&tail[..], &data[90..]);
        // Windows past the stored length clamp to empty rather than erroring.
        let beyond = p.download_page(&key, 200, Some(10)).unwrap().unwrap();
        assert!(beyond.is_empty());
        assert!(p.download_page(b"missing", 0, Some(4)).unwrap().is_none());

        // Only the served bytes count, not the page size.
        assert_eq!(p.stats().bytes_read, 20 + 10); // the clamped window served 0
        assert_eq!(p.stats().reads, 3);
    }

    #[test]
    fn download_many_answers_every_request_in_order() {
        let p = Provider::in_memory(ProviderId(0), NodeId(0));
        let k0 = page_key(BlobId(0), Version(1), 0);
        let k1 = page_key(BlobId(0), Version(1), 1);
        p.put_page(&k0, Bytes::from(vec![1u8; 50])).unwrap();
        p.put_page(&k1, Bytes::from(vec![2u8; 50])).unwrap();
        let got = p
            .download_many(vec![
                PageRequest {
                    key: k0.clone(),
                    offset: 0,
                    len: Some(8),
                },
                PageRequest {
                    key: b"missing".to_vec(),
                    offset: 0,
                    len: None,
                },
                PageRequest {
                    key: k1.clone(),
                    offset: 40,
                    len: None,
                },
            ])
            .unwrap();
        assert_eq!(got[0].as_ref().unwrap().len(), 8);
        assert!(got[1].is_none());
        assert_eq!(got[2].as_ref().unwrap(), &Bytes::from(vec![2u8; 10]));
        p.kill();
        assert!(p
            .download_many(vec![PageRequest {
                key: k0,
                offset: 0,
                len: None,
            }])
            .is_err());
    }

    #[test]
    fn query_reports_stored_length_without_serving_bytes() {
        let p = Provider::in_memory(ProviderId(0), NodeId(0));
        let key = page_key(BlobId(0), Version(1), 0);
        p.put_page(&key, Bytes::from(vec![9u8; 64])).unwrap();
        assert_eq!(p.query_page(&key).unwrap(), Some(64));
        assert_eq!(p.query_page(b"missing").unwrap(), None);
        assert_eq!(p.stats().reads, 0);
        assert_eq!(p.stats().bytes_read, 0);
        p.kill();
        assert!(p.query_page(&key).is_err());
    }

    #[test]
    fn dead_provider_rejects_all_operations() {
        let p = Provider::in_memory(ProviderId(0), NodeId(0));
        let key = page_key(BlobId(0), Version(1), 0);
        p.put_page(&key, Bytes::from_static(b"data")).unwrap();
        p.kill();
        assert!(!p.is_alive());
        assert!(p.put_page(&key, Bytes::from_static(b"x")).is_err());
        assert!(p.get_page(&key).is_err());
        assert!(p.delete_page(&key).is_err());
        p.revive();
        assert_eq!(
            p.get_page(&key).unwrap().unwrap(),
            Bytes::from_static(b"data")
        );
    }

    #[test]
    fn ping_tracks_kill_and_revive() {
        let p = Provider::in_memory(ProviderId(0), NodeId(0));
        assert!(p.ping());
        p.kill();
        assert!(!p.ping());
        p.revive();
        assert!(p.ping());
    }

    #[test]
    fn missing_page_read_does_not_count_as_served() {
        let p = Provider::in_memory(ProviderId(0), NodeId(0));
        let _ = p.get_page(b"nope").unwrap();
        assert_eq!(p.stats().reads, 0);
    }

    #[test]
    fn dropping_an_actor_provider_mid_traffic_never_hangs_a_caller() {
        // Four writers hammer the actor while the main thread drops its
        // handle. Every in-flight call must come back — stored or refused —
        // and the joins below must not hang. (The executor-level guarantees
        // behind this — mailbox drain on last-handle drop, reply-waiter
        // cancellation on actor death — are tested in `miniexec` itself.)
        let provider = Arc::new(Provider::in_memory(ProviderId(7), NodeId(0)));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let p = Arc::clone(&provider);
                std::thread::spawn(move || {
                    let mut stored = 0u64;
                    for i in 0..200u64 {
                        let key = page_key(BlobId(w), Version(1), i);
                        if p.put_page(&key, Bytes::from_static(b"payload")).is_ok() {
                            stored += 1;
                        }
                    }
                    stored
                })
            })
            .collect();
        drop(provider);
        let stored: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        // The writers' own Arc clones kept the actor alive, so their traffic
        // all landed; the point is that the racing drop broke nothing.
        assert_eq!(stored, 4 * 200);
    }
}
