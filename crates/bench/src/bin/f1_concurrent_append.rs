//! F1 — future-work experiment (paper §V): concurrent appends to a *shared*
//! file, "enabling the MapReduce workers to write the reduce output to the
//! same file, instead of creating several output files". BlobSeer already
//! supports this; the experiment measures N clients appending concurrently to
//! one blob versus each writing its own blob, and checks no append is lost.

use blobseer::{BlobSeer, BlobSeerConfig};
use std::time::Instant;

fn main() {
    let block = 64 * 1024u64;
    let appends_per_client = 64usize;
    println!("== F1: concurrent appends to one shared blob vs one blob per client ==");
    println!();
    println!(
        "{:<10} {:>22} {:>22}",
        "clients", "shared blob (MiB/s)", "per-client blobs (MiB/s)"
    );
    for &clients in &[2usize, 4, 8] {
        let total_bytes = (clients * appends_per_client) as u64 * block;

        // Shared blob: everyone appends to the same blob.
        let sys = BlobSeer::new(
            BlobSeerConfig::default()
                .with_providers(8)
                .with_page_size(block),
        );
        let client0 = sys.client();
        let blob = client0.create(Some(block)).unwrap();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let client = sys.client_on(sys.topology().node((c % 8) as u32));
                s.spawn(move || {
                    let payload = vec![c as u8; block as usize];
                    for _ in 0..appends_per_client {
                        client.append(blob, &payload).unwrap();
                    }
                });
            }
        });
        let shared_secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            client0.size(blob).unwrap(),
            total_bytes,
            "no append may be lost"
        );
        let shared_report = bench::write_path_report(&sys);

        // Separate blobs: the current Hadoop-style one-output-per-reducer.
        let sys = BlobSeer::new(
            BlobSeerConfig::default()
                .with_providers(8)
                .with_page_size(block),
        );
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let client = sys.client_on(sys.topology().node((c % 8) as u32));
                s.spawn(move || {
                    let blob = client.create(Some(block)).unwrap();
                    let payload = vec![c as u8; block as usize];
                    for _ in 0..appends_per_client {
                        client.append(blob, &payload).unwrap();
                    }
                });
            }
        });
        let separate_secs = t0.elapsed().as_secs_f64();

        let mib = total_bytes as f64 / (1024.0 * 1024.0);
        println!(
            "{:<10} {:>22.1} {:>22.1}",
            clients,
            mib / shared_secs,
            mib / separate_secs
        );
        println!("    shared-blob {shared_report}");
    }
}
