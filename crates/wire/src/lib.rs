//! # wire — the transport boundary between components
//!
//! Every inter-component call in this codebase used to be a plain in-process
//! method call: round trips were *counted* but cost nothing, so none of the
//! paper's cluster-scale effects (rack distance, shared-link contention,
//! congestion stragglers) were measurable. This crate makes the boundary
//! explicit:
//!
//! * [`Counters`] — one shared schema for message/byte accounting at every
//!   boundary (client↔DHT node, client↔provider, jobtracker↔tasktracker),
//!   replacing the scattered per-component `round_trips` atomics. Tracks
//!   `bytes_on_wire` per direction so reports and BENCH json files all speak
//!   the same language.
//! * [`Transport`] — the charge point. One call per message exchange
//!   (request out, response back) between two cluster nodes.
//! * [`InProc`] — today's behavior: zero cost, pure accounting. The
//!   differential oracle: results under `InProc` and [`SimNet`] must be
//!   byte-identical; only simulated time differs.
//! * [`SimNet`] — routes every exchange through [`ClusterTopology`] +
//!   [`NetworkModel`], charging per-hop latency and shared-link bandwidth on
//!   a deterministic virtual timeline. No wall-clock sleeps, ever: the
//!   charge is pure ledger arithmetic on [`SimTime`], and the resulting
//!   makespan is read back with [`SimNet::makespan`].
//!
//! ## Cost model
//!
//! `SimNet` keeps a per-source-node ready time (a node issues its next
//! request only after its previous exchange completed) and a per-link
//! busy-until ledger (a link serves one exchange's bytes at a time — the
//! serialization models shared-link bandwidth: concurrent transfers through
//! the same rack uplink queue behind each other). An exchange from `src` to
//! `dst` starts at the max of the source's ready time and the availability
//! of every link on the request and response paths, occupies those links for
//! `bytes/bottleneck_bw`, and completes after two proximity latencies
//! (request + response). Makespan is the completion time of the last
//! exchange.
//!
//! Determinism: the ledger is order-sensitive (as a real shared network is),
//! so a benchmark that wants a reproducible makespan must issue its
//! exchanges in a deterministic order — drive clients round-robin from one
//! thread and keep per-operation I/O fan-out at 1.
//!
//! ## Source propagation
//!
//! Deeply nested layers (the DHT front-end) do not carry a "which node is
//! calling" parameter through every signature. [`source_guard`] pins the
//! calling node on the current thread; [`current_source`] reads it back at
//! the charge point. The guard does not cross thread-pool boundaries — call
//! sites that fan out to pool workers must charge with an explicit source.

use parking_lot::Mutex;
use serde::Serialize;
use simcluster::netmodel::{LinkId, NetworkModel};
use simcluster::time::{transfer_time, SimDuration, SimTime};
use simcluster::topology::{ClusterTopology, NodeId};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Whether an exchange is read-shaped (small request, payload response) or
/// write-shaped (payload request, small response). Used only to bucket the
/// message counters; byte accounting is explicit per direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// A query: the payload flows back to the caller.
    Read,
    /// A mutation: the payload flows to the callee.
    Write,
}

/// Fixed per-message framing overhead (header, key framing, status) added by
/// charge sites on top of the payload bytes, so that a zero-byte control
/// message still moves something.
pub const MSG_OVERHEAD: u64 = 16;

/// The shared message/byte accounting schema for one component boundary.
///
/// All counters are monotonic and lock-free; `messages` is always the sum of
/// `read_messages` and `write_messages`. One message = one node contact (a
/// batch folded into a single exchange counts once — this is the counter
/// that shrinks when callers coalesce).
#[derive(Debug, Default)]
pub struct Counters {
    messages: AtomicU64,
    read_messages: AtomicU64,
    write_messages: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl Counters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one exchange: `bytes_out` left the caller, `bytes_in` came
    /// back.
    pub fn record(&self, dir: Direction, bytes_out: u64, bytes_in: u64) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        match dir {
            Direction::Read => self.read_messages.fetch_add(1, Ordering::Relaxed),
            Direction::Write => self.write_messages.fetch_add(1, Ordering::Relaxed),
        };
        self.bytes_sent.fetch_add(bytes_out, Ordering::Relaxed);
        self.bytes_received.fetch_add(bytes_in, Ordering::Relaxed);
    }

    /// Total exchanges (node contacts) recorded.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// The read-shaped subset of [`Counters::messages`].
    pub fn read_messages(&self) -> u64 {
        self.read_messages.load(Ordering::Relaxed)
    }

    /// The write-shaped subset of [`Counters::messages`].
    pub fn write_messages(&self) -> u64 {
        self.write_messages.load(Ordering::Relaxed)
    }

    /// Bytes sent caller-to-callee (requests).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Bytes received callee-to-caller (responses).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Total bytes moved in either direction.
    pub fn bytes_on_wire(&self) -> u64 {
        self.bytes_sent() + self.bytes_received()
    }

    /// A consistent-enough copy for reporting (individual fields are read
    /// relaxed; use when traffic is quiesced for exact figures).
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            messages: self.messages(),
            read_messages: self.read_messages(),
            write_messages: self.write_messages(),
            bytes_sent: self.bytes_sent(),
            bytes_received: self.bytes_received(),
            bytes_on_wire: self.bytes_on_wire(),
        }
    }
}

/// A point-in-time copy of [`Counters`]: the one schema every report and
/// BENCH json uses for wire traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CountersSnapshot {
    /// Total exchanges (node contacts).
    pub messages: u64,
    /// Read-shaped exchanges.
    pub read_messages: u64,
    /// Write-shaped exchanges.
    pub write_messages: u64,
    /// Bytes sent caller-to-callee.
    pub bytes_sent: u64,
    /// Bytes received callee-to-caller.
    pub bytes_received: u64,
    /// Sum of both directions.
    pub bytes_on_wire: u64,
}

impl CountersSnapshot {
    /// Sum two snapshots (aggregate several boundaries into one figure).
    pub fn merged(&self, other: &CountersSnapshot) -> CountersSnapshot {
        CountersSnapshot {
            messages: self.messages + other.messages,
            read_messages: self.read_messages + other.read_messages,
            write_messages: self.write_messages + other.write_messages,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            bytes_on_wire: self.bytes_on_wire + other.bytes_on_wire,
        }
    }

    /// The traffic recorded since `earlier` (fields saturate at zero).
    pub fn since(&self, earlier: &CountersSnapshot) -> CountersSnapshot {
        CountersSnapshot {
            messages: self.messages.saturating_sub(earlier.messages),
            read_messages: self.read_messages.saturating_sub(earlier.read_messages),
            write_messages: self.write_messages.saturating_sub(earlier.write_messages),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            bytes_on_wire: self.bytes_on_wire.saturating_sub(earlier.bytes_on_wire),
        }
    }
}

/// The charge point between two components on different cluster nodes.
///
/// One call = one message exchange: a request of `bytes_out` bytes from
/// `src` to `dst` and a response of `bytes_in` bytes back. Implementations
/// return the simulated duration of the exchange; they never sleep.
pub trait Transport: Send + Sync {
    /// Charge one request/response exchange and return its simulated cost.
    fn exchange(
        &self,
        src: NodeId,
        dst: NodeId,
        dir: Direction,
        bytes_out: u64,
        bytes_in: u64,
    ) -> SimDuration;

    /// Human-readable transport name for reports.
    fn name(&self) -> &'static str;
}

/// The zero-cost transport: every exchange completes instantly. This is the
/// pre-wire behavior and the differential oracle — a workload must produce
/// byte-identical results under `InProc` and [`SimNet`].
#[derive(Debug, Default)]
pub struct InProc;

impl InProc {
    /// A zero-cost transport.
    pub fn new() -> Self {
        InProc
    }
}

impl Transport for InProc {
    fn exchange(
        &self,
        _src: NodeId,
        _dst: NodeId,
        _dir: Direction,
        _bytes_out: u64,
        _bytes_in: u64,
    ) -> SimDuration {
        SimDuration::ZERO
    }

    fn name(&self) -> &'static str {
        "inproc"
    }
}

/// Ledger state of the simulated network: when each source node and each
/// link becomes free again, plus the completion time of the last exchange.
#[derive(Debug, Default)]
struct SimNetState {
    node_ready: HashMap<u32, SimTime>,
    link_free: HashMap<LinkId, SimTime>,
    makespan: SimTime,
    exchanges: u64,
}

/// The charged transport: every exchange is routed through the topology's
/// link path and pays proximity latency plus serialized bandwidth on every
/// shared link (see the crate docs for the cost model). Purely virtual time
/// — no thread ever sleeps.
pub struct SimNet {
    topology: ClusterTopology,
    model: NetworkModel,
    state: Mutex<SimNetState>,
}

impl SimNet {
    /// A charged transport over the given topology and hardware model.
    pub fn new(topology: ClusterTopology, model: NetworkModel) -> Self {
        SimNet {
            topology,
            model,
            state: Mutex::new(SimNetState::default()),
        }
    }

    /// Completion time of the last exchange on the virtual timeline — the
    /// simulated makespan of everything charged so far.
    pub fn makespan(&self) -> SimDuration {
        let s = self.state.lock();
        s.makespan.duration_since(SimTime::ZERO)
    }

    /// Number of exchanges charged.
    pub fn exchanges(&self) -> u64 {
        self.state.lock().exchanges
    }

    /// Reset the virtual timeline (start a new measured phase on the same
    /// deployment).
    pub fn reset(&self) {
        *self.state.lock() = SimNetState::default();
    }

    /// The topology this transport routes over.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// The hardware model this transport charges with.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }
}

impl Transport for SimNet {
    fn exchange(
        &self,
        src: NodeId,
        dst: NodeId,
        _dir: Direction,
        bytes_out: u64,
        bytes_in: u64,
    ) -> SimDuration {
        let latency = self.model.latency(self.topology.proximity(src, dst));
        let out_path = self.model.path(&self.topology, src, dst);
        let in_path = self.model.path(&self.topology, dst, src);
        let xfer = transfer_time(bytes_out, self.model.path_capacity(&out_path))
            + transfer_time(bytes_in, self.model.path_capacity(&in_path));

        let mut s = self.state.lock();
        let mut start = s.node_ready.get(&src.0).copied().unwrap_or(SimTime::ZERO);
        for link in out_path.iter().chain(in_path.iter()) {
            if let Some(&free) = s.link_free.get(link) {
                start = start.max(free);
            }
        }
        // The links serve this exchange's bytes back to back; the two
        // proximity latencies (request out, response back) are propagation
        // delay and do not occupy the links.
        let busy_until = start + xfer;
        for link in out_path.into_iter().chain(in_path) {
            s.link_free.insert(link, busy_until);
        }
        let end = busy_until + latency + latency;
        s.node_ready.insert(src.0, end);
        s.makespan = s.makespan.max(end);
        s.exchanges += 1;
        end.duration_since(start)
    }

    fn name(&self) -> &'static str {
        "simnet"
    }
}

thread_local! {
    static SOURCE: Cell<Option<u32>> = const { Cell::new(None) };
}

/// Pins `node` as the calling source for transport charges made from this
/// thread while the guard lives (restores the previous source on drop).
pub struct SourceGuard {
    prev: Option<u32>,
}

/// Pin the calling cluster node for charges made on this thread. Nested
/// guards stack; the guard must not be sent across threads (it is not
/// `Send`), and pool workers spawned while it is held do *not* inherit it.
pub fn source_guard(node: NodeId) -> SourceGuard {
    let prev = SOURCE.with(|s| s.replace(Some(node.0)));
    SourceGuard { prev }
}

/// The source node pinned on this thread, if any.
pub fn current_source() -> Option<NodeId> {
    SOURCE.with(|s| s.get()).map(NodeId)
}

impl Drop for SourceGuard {
    fn drop(&mut self) {
        SOURCE.with(|s| s.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rack_topo() -> ClusterTopology {
        ClusterTopology::builder()
            .sites(1)
            .racks_per_site(2)
            .nodes_per_rack(2)
            .build()
    }

    #[test]
    fn counters_bucket_by_direction_and_sum_bytes() {
        let c = Counters::new();
        c.record(Direction::Read, 10, 100);
        c.record(Direction::Write, 200, 5);
        c.record(Direction::Read, 1, 2);
        assert_eq!(c.messages(), 3);
        assert_eq!(c.read_messages(), 2);
        assert_eq!(c.write_messages(), 1);
        assert_eq!(c.bytes_sent(), 211);
        assert_eq!(c.bytes_received(), 107);
        assert_eq!(c.bytes_on_wire(), 318);
        let snap = c.snapshot();
        assert_eq!(snap.messages, 3);
        assert_eq!(snap.bytes_on_wire, 318);
    }

    #[test]
    fn snapshot_merge_and_since() {
        let a = CountersSnapshot {
            messages: 3,
            read_messages: 2,
            write_messages: 1,
            bytes_sent: 10,
            bytes_received: 20,
            bytes_on_wire: 30,
        };
        let b = a.merged(&a);
        assert_eq!(b.messages, 6);
        assert_eq!(b.bytes_on_wire, 60);
        let d = b.since(&a);
        assert_eq!(d, a);
        // `since` an unrelated larger snapshot saturates, never wraps.
        assert_eq!(a.since(&b).messages, 0);
    }

    #[test]
    fn inproc_is_free() {
        let t = InProc::new();
        let topo = two_rack_topo();
        let d = t.exchange(
            topo.node(0),
            topo.node(1),
            Direction::Read,
            1 << 20,
            1 << 20,
        );
        assert_eq!(d, SimDuration::ZERO);
        assert_eq!(t.name(), "inproc");
    }

    #[test]
    fn simnet_charges_latency_and_bandwidth() {
        let topo = two_rack_topo();
        let net = SimNet::new(topo.clone(), NetworkModel::grid5000_like());
        assert_eq!(net.makespan(), SimDuration::ZERO);
        let d = net.exchange(topo.node(0), topo.node(1), Direction::Read, 0, 1 << 20);
        // 1 MiB over a ~117 MiB/s NIC plus two rack latencies: > 8 ms.
        assert!(d.as_secs_f64() > 0.008, "charged {d}");
        assert_eq!(net.makespan(), d);
        assert_eq!(net.exchanges(), 1);
    }

    #[test]
    fn farther_destinations_cost_more() {
        let topo = ClusterTopology::builder()
            .sites(2)
            .racks_per_site(2)
            .nodes_per_rack(2)
            .build();
        let bytes = 4 << 20;
        let cost_at = |dst: u32| {
            let net = SimNet::new(topo.clone(), NetworkModel::grid5000_like());
            net.exchange(topo.node(0), topo.node(dst), Direction::Read, 64, bytes)
        };
        let same_rack = cost_at(1);
        let same_site = cost_at(2);
        let remote = cost_at(4);
        assert!(same_rack <= same_site);
        assert!(same_site < remote, "{same_site} vs {remote}");
    }

    #[test]
    fn shared_links_serialize_concurrent_exchanges() {
        // Two different sources hitting the same destination share its
        // ingress NIC: the second exchange queues behind the first, so the
        // makespan exceeds either exchange in isolation.
        let topo = ClusterTopology::flat(3);
        let net = SimNet::new(topo.clone(), NetworkModel::grid5000_like());
        let alone = {
            let solo = SimNet::new(topo.clone(), NetworkModel::grid5000_like());
            solo.exchange(topo.node(0), topo.node(2), Direction::Write, 8 << 20, 16);
            solo.makespan()
        };
        net.exchange(topo.node(0), topo.node(2), Direction::Write, 8 << 20, 16);
        net.exchange(topo.node(1), topo.node(2), Direction::Write, 8 << 20, 16);
        assert!(
            net.makespan().as_micros() > (alone.as_micros() * 3) / 2,
            "contended {} vs isolated {}",
            net.makespan(),
            alone
        );
    }

    #[test]
    fn a_source_pipelines_after_its_previous_exchange() {
        // One source issuing two exchanges to different destinations: the
        // second starts after the first completed (a client thread blocks on
        // its reply), so the makespan is at least the sum of transfer times.
        let topo = ClusterTopology::flat(4);
        let net = SimNet::new(topo.clone(), NetworkModel::grid5000_like());
        let d1 = net.exchange(topo.node(0), topo.node(1), Direction::Write, 4 << 20, 16);
        let d2 = net.exchange(topo.node(0), topo.node(2), Direction::Write, 4 << 20, 16);
        assert!(net.makespan().as_micros() >= d1.as_micros() + d2.as_micros() - 1);
    }

    #[test]
    fn reset_clears_the_timeline() {
        let topo = ClusterTopology::flat(2);
        let net = SimNet::new(topo.clone(), NetworkModel::grid5000_like());
        net.exchange(topo.node(0), topo.node(1), Direction::Read, 64, 1 << 20);
        assert!(net.makespan() > SimDuration::ZERO);
        net.reset();
        assert_eq!(net.makespan(), SimDuration::ZERO);
        assert_eq!(net.exchanges(), 0);
    }

    #[test]
    fn source_guard_nests_and_restores() {
        let topo = ClusterTopology::flat(3);
        assert_eq!(current_source(), None);
        {
            let _a = source_guard(topo.node(1));
            assert_eq!(current_source(), Some(topo.node(1)));
            {
                let _b = source_guard(topo.node(2));
                assert_eq!(current_source(), Some(topo.node(2)));
            }
            assert_eq!(current_source(), Some(topo.node(1)));
        }
        assert_eq!(current_source(), None);
    }

    #[test]
    fn identical_exchange_sequences_are_deterministic() {
        let topo = ClusterTopology::grid5000_270();
        let model = NetworkModel::grid5000_like();
        let run = || {
            let net = SimNet::new(topo.clone(), model.clone());
            for i in 0..200u32 {
                let src = topo.node(i % 30);
                let dst = topo.node((i * 7 + 3) % 270);
                net.exchange(src, dst, Direction::Read, 64, u64::from(i) * 1024);
            }
            net.makespan()
        };
        assert_eq!(run(), run());
    }
}
