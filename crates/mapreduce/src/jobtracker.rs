//! The jobtracker: job orchestration over the tasktrackers.
//!
//! The jobtracker is the "single master" of the Hadoop architecture the paper
//! describes (§II-A): it splits the input, hands map tasks to tasktrackers
//! (preferring trackers whose node holds the split's data), re-executes
//! failed tasks, schedules the reduce tasks and reports job-level counters.
//! Tasktrackers are executed as real threads — one per slot — so concurrent
//! access to the storage layer is genuinely concurrent.
//!
//! Intermediate data flows through the storage layer ([`crate::shuffle`]):
//! map tasks spill sorted, partition-bucketed files under
//! `<output>/_shuffle/`, and reduce tasks pull their partition's segment from
//! every committed map file with positioned reads — starting as soon as
//! individual map outputs commit, not behind a global map barrier. All task
//! output (spills and `part-*` files alike) goes through the
//! write-to-`_temporary`-then-rename commit protocol, so retried attempts
//! never leave partial or duplicate files. The original collect-everything-
//! in-RAM shuffle survives as [`JobTracker::run_inmem`], the sequential
//! differential-testing oracle.

use crate::error::{MrError, MrResult};
use crate::fs::DistFs;
use crate::job::Job;
use crate::scheduler::{pick_map_task, Locality, LocalityCounters};
use crate::shuffle;
use crate::split::{compute_splits, InputSplit};
use crate::tasktracker::{
    group_by_key, run_map_task, run_reduce_task, write_output_file, MapTaskOutput, TaskTracker,
};
use parking_lot::Mutex;
use simcluster::topology::ClusterTopology;
use std::time::{Duration, Instant};

/// Counters of the storage-materialized shuffle, the analogue of Hadoop's
/// spilled-records / shuffle-bytes job counters. All zero for map-only jobs
/// and for [`JobTracker::run_inmem`] (which moves no intermediate bytes
/// through storage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleCounters {
    /// Bytes of spill files written by map tasks (headers included).
    pub spill_bytes: u64,
    /// Intermediate records written to spill files (post-combine).
    pub spill_records: u64,
    /// Records fed into the combiner at spill time (0 without a combiner).
    pub combine_input_records: u64,
    /// Records the combiner emitted.
    pub combine_output_records: u64,
    /// Map-output segments pulled by reduce tasks (one per map x reduce pair
    /// per successful attempt).
    pub segments_fetched: u64,
    /// Non-empty sorted runs fed to the reducers' k-way merges.
    pub merge_runs: u64,
    /// Positioned reads issued by segment fetches (index + payload reads).
    pub shuffle_read_round_trips: u64,
    /// Bytes moved by segment fetches.
    pub shuffle_read_bytes: u64,
}

/// Job-level counters and outcome, the analogue of Hadoop's job report.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Name of the job.
    pub job_name: String,
    /// Name of the storage backend the job ran over ("BSFS" / "HDFS").
    pub fs_name: String,
    /// Number of map tasks executed.
    pub map_tasks: usize,
    /// Number of reduce tasks executed.
    pub reduce_tasks: usize,
    /// Map-task locality breakdown.
    pub locality: LocalityCounters,
    /// Task attempts that failed and were retried.
    pub task_retries: usize,
    /// Input records consumed by the map phase.
    pub input_records: u64,
    /// Records produced by the reduce phase (or the map phase for map-only
    /// jobs).
    pub output_records: u64,
    /// Bytes read from the storage layer by map tasks.
    pub input_bytes: u64,
    /// Bytes written to the storage layer by output tasks.
    pub output_bytes: u64,
    /// Counters of the storage-materialized shuffle.
    pub shuffle: ShuffleCounters,
    /// Wall-clock duration of the job.
    pub elapsed: Duration,
    /// Paths of the `part-*` output files.
    pub output_files: Vec<String>,
}

impl JobResult {
    /// Completion time in seconds (the metric the paper reports for the
    /// application experiments).
    pub fn completion_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// The framework master.
pub struct JobTracker {
    topology: ClusterTopology,
    trackers: Vec<TaskTracker>,
}

/// Shared map-phase state guarded by one mutex.
struct MapPhase {
    pending: Vec<usize>,
    attempts: Vec<usize>,
    /// Per-task counters, filled as tasks commit (`partitions` cleared — the
    /// data lives in the spill files).
    results: Vec<Option<MapTaskOutput>>,
    /// Which map tasks have committed their spill (or `part-m` file):
    /// reducers poll this to start fetching before the whole phase is done.
    committed: Vec<bool>,
    outstanding: usize,
    failure: Option<MrError>,
    locality: LocalityCounters,
    retries: usize,
    /// Output bytes written directly by map tasks (map-only jobs).
    map_output_bytes: u64,
    map_output_records: u64,
    output_files: Vec<String>,
}

/// Shared reduce-phase state.
struct ReducePhase {
    pending: Vec<usize>,
    attempts: Vec<usize>,
    done: usize,
    failure: Option<MrError>,
    retries: usize,
    output_bytes: u64,
    output_records: u64,
    output_files: Vec<String>,
    segments_fetched: u64,
    merge_runs: u64,
    read_round_trips: u64,
    read_bytes: u64,
}

impl JobTracker {
    /// Create a jobtracker over one tasktracker per node of the topology,
    /// with default slot counts.
    pub fn new(topology: &ClusterTopology) -> Self {
        let trackers = topology.all_nodes().map(TaskTracker::new).collect();
        JobTracker {
            topology: topology.clone(),
            trackers,
        }
    }

    /// Create a jobtracker over an explicit set of tasktrackers.
    pub fn with_trackers(topology: &ClusterTopology, trackers: Vec<TaskTracker>) -> Self {
        assert!(!trackers.is_empty(), "at least one tasktracker is required");
        JobTracker {
            topology: topology.clone(),
            trackers,
        }
    }

    /// The tasktrackers this jobtracker drives.
    pub fn trackers(&self) -> &[TaskTracker] {
        &self.trackers
    }

    /// The cluster topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Validate the job's output location and expand its input into splits.
    fn prepare(&self, fs: &dyn DistFs, job: &Job) -> MrResult<Vec<InputSplit>> {
        let config = &job.config;
        if config.output_dir.is_empty() {
            return Err(MrError::InvalidJob(
                "output directory must not be empty".into(),
            ));
        }
        if fs.exists(&config.output_dir) {
            return Err(MrError::OutputExists(config.output_dir.clone()));
        }
        fs.mkdirs(&config.output_dir)?;
        compute_splits(fs, &config.input, config.split_size)
    }

    /// Run a job over the given storage backend and return its report.
    ///
    /// This is the storage-materialized data path: map outputs spill through
    /// `fs`, reduce tasks pull segments with positioned reads as the spills
    /// commit, and every task output is rename-committed.
    pub fn run(&self, fs: &dyn DistFs, job: &Job) -> MrResult<JobResult> {
        let start = Instant::now();
        let config = &job.config;
        let splits = self.prepare(fs, job)?;
        let num_maps = splits.len();
        let map_only = config.num_reducers == 0;
        let partitions = if map_only { 1 } else { config.num_reducers };
        fs.mkdirs(&shuffle::temporary_dir(&config.output_dir))?;
        if !map_only {
            fs.mkdirs(&shuffle::shuffle_dir(&config.output_dir))?;
        }

        let map_state = Mutex::new(MapPhase {
            pending: (0..num_maps).collect(),
            attempts: vec![0; num_maps],
            results: (0..num_maps).map(|_| None).collect(),
            committed: vec![false; num_maps],
            outstanding: 0,
            failure: None,
            locality: LocalityCounters::default(),
            retries: 0,
            map_output_bytes: 0,
            map_output_records: 0,
            output_files: Vec::new(),
        });
        let reduce_state = Mutex::new(ReducePhase {
            pending: (0..partitions).collect(),
            attempts: vec![0; partitions],
            done: 0,
            failure: None,
            retries: 0,
            output_bytes: 0,
            output_records: 0,
            output_files: Vec::new(),
            segments_fetched: 0,
            merge_runs: 0,
            read_round_trips: 0,
            read_bytes: 0,
        });

        // One scope for both phases: reduce slots start pulling committed
        // segments while map slots are still running.
        std::thread::scope(|scope| {
            for tracker in &self.trackers {
                for _slot in 0..tracker.map_slots {
                    let map_state = &map_state;
                    let splits = &splits;
                    let topology = &self.topology;
                    let tracker = *tracker;
                    let job = &*job;
                    let output_dir = config.output_dir.clone();
                    let max_attempts = config.max_task_attempts;
                    // Each slot gets a storage handle bound to the tracker's
                    // node, so its I/O originates there.
                    let local_fs = fs.on_node(tracker.node);
                    scope.spawn(move || {
                        map_worker_loop(
                            &*local_fs,
                            topology,
                            tracker,
                            splits,
                            job,
                            partitions,
                            map_only,
                            &output_dir,
                            max_attempts,
                            map_state,
                        );
                    });
                }
                if !map_only {
                    for _slot in 0..tracker.reduce_slots {
                        let map_state = &map_state;
                        let reduce_state = &reduce_state;
                        let job = &*job;
                        let output_dir = config.output_dir.clone();
                        let max_attempts = config.max_task_attempts;
                        let local_fs = fs.on_node(tracker.node);
                        scope.spawn(move || {
                            reduce_worker_loop(
                                &*local_fs,
                                job,
                                &output_dir,
                                num_maps,
                                partitions,
                                max_attempts,
                                map_state,
                                reduce_state,
                            );
                        });
                    }
                }
            }
        });

        let mut map_state = map_state.into_inner();
        if let Some(err) = map_state.failure.take() {
            // Failed jobs leave their committed part files for post-mortem
            // (as Hadoop does), but not the shuffle/scratch debris.
            shuffle::cleanup_job_dirs(fs, &config.output_dir);
            return Err(err);
        }
        let map_outputs: Vec<MapTaskOutput> = map_state
            .results
            .into_iter()
            .map(|r| r.expect("all map tasks finished"))
            .collect();
        let input_records: u64 = map_outputs.iter().map(|o| o.records_read).sum();
        let input_bytes: u64 = map_outputs.iter().map(|o| o.bytes_read).sum();
        let mut counters = ShuffleCounters::default();
        for o in &map_outputs {
            counters.spill_bytes += o.spilled_bytes;
            counters.spill_records += o.spilled_records;
            counters.combine_input_records += o.combine_input_records;
            counters.combine_output_records += o.combine_output_records;
        }

        if map_only {
            let _ = fs.delete(&shuffle::temporary_dir(&config.output_dir), true);
            let mut output_files = map_state.output_files;
            output_files.sort();
            return Ok(JobResult {
                job_name: config.name.clone(),
                fs_name: fs.name().to_string(),
                map_tasks: num_maps,
                reduce_tasks: 0,
                locality: map_state.locality,
                task_retries: map_state.retries,
                input_records,
                output_records: map_state.map_output_records,
                input_bytes,
                output_bytes: map_state.map_output_bytes,
                shuffle: counters,
                elapsed: start.elapsed(),
                output_files,
            });
        }

        let mut reduce_state = reduce_state.into_inner();
        if let Some(err) = reduce_state.failure.take() {
            shuffle::cleanup_job_dirs(fs, &config.output_dir);
            return Err(err);
        }
        counters.segments_fetched = reduce_state.segments_fetched;
        counters.merge_runs = reduce_state.merge_runs;
        counters.shuffle_read_round_trips = reduce_state.read_round_trips;
        counters.shuffle_read_bytes = reduce_state.read_bytes;
        shuffle::cleanup_job_dirs(fs, &config.output_dir);
        let mut output_files = reduce_state.output_files;
        output_files.sort();

        Ok(JobResult {
            job_name: config.name.clone(),
            fs_name: fs.name().to_string(),
            map_tasks: num_maps,
            reduce_tasks: partitions,
            locality: map_state.locality,
            task_retries: map_state.retries + reduce_state.retries,
            input_records,
            output_records: reduce_state.output_records,
            input_bytes,
            output_bytes: reduce_state.output_bytes,
            shuffle: counters,
            elapsed: start.elapsed(),
            output_files,
        })
    }

    /// Run a job with the original in-memory shuffle: map outputs are
    /// collected in RAM, regrouped behind a global barrier, and reduce output
    /// is written directly to its final path. Sequential and dead simple —
    /// this is the differential-testing oracle the storage-materialized
    /// [`JobTracker::run`] must agree with byte-for-byte, mirroring the
    /// `lookup_range_walk` pattern of the metadata read path.
    pub fn run_inmem(&self, fs: &dyn DistFs, job: &Job) -> MrResult<JobResult> {
        let start = Instant::now();
        let config = &job.config;
        let splits = self.prepare(fs, job)?;
        let num_maps = splits.len();
        let map_only = config.num_reducers == 0;
        let partitions = if map_only { 1 } else { config.num_reducers };

        let mut locality = LocalityCounters::default();
        let mut input_records = 0u64;
        let mut input_bytes = 0u64;
        let mut output_records = 0u64;
        let mut output_bytes = 0u64;
        let mut output_files = Vec::new();
        let mut partition_data: Vec<Vec<(String, String)>> = vec![Vec::new(); partitions];

        for split in &splits {
            let mut out = run_map_task(fs, split, &*job.mapper, &*job.partitioner, partitions)?;
            // The oracle runs every task at the submitting node.
            locality.record(Locality::Remote);
            input_records += out.records_read;
            input_bytes += out.bytes_read;
            if map_only {
                let records = std::mem::take(&mut out.partitions[0]);
                let path = format!("{}/part-m-{:05}", config.output_dir, split.id);
                output_bytes += write_output_file(fs, &path, &records)?;
                output_records += records.len() as u64;
                output_files.push(path);
            } else {
                for (p, mut bucket) in out.partitions.into_iter().enumerate() {
                    // Same per-map transformation as the spill path, so the
                    // reduce inputs are identical record streams.
                    shuffle::sort_run(&mut bucket);
                    if let Some(combiner) = &config.combiner {
                        bucket = shuffle::combine_run(bucket, &**combiner)?.records;
                    }
                    partition_data[p].extend(bucket);
                }
            }
        }

        if !map_only {
            for (p, pairs) in partition_data.into_iter().enumerate() {
                let grouped = group_by_key(pairs);
                let records = run_reduce_task(&grouped, &*job.reducer)?;
                let path = format!("{}/part-r-{p:05}", config.output_dir);
                output_bytes += write_output_file(fs, &path, &records)?;
                output_records += records.len() as u64;
                output_files.push(path);
            }
        }

        output_files.sort();
        Ok(JobResult {
            job_name: config.name.clone(),
            fs_name: fs.name().to_string(),
            map_tasks: num_maps,
            reduce_tasks: if map_only { 0 } else { partitions },
            locality,
            task_retries: 0,
            input_records,
            output_records,
            input_bytes,
            output_bytes,
            shuffle: ShuffleCounters::default(),
            elapsed: start.elapsed(),
            output_files,
        })
    }
}

/// Worker loop executed by every map slot.
#[allow(clippy::too_many_arguments)]
fn map_worker_loop(
    fs: &dyn DistFs,
    topology: &ClusterTopology,
    tracker: TaskTracker,
    splits: &[InputSplit],
    job: &Job,
    partitions: usize,
    map_only: bool,
    output_dir: &str,
    max_attempts: usize,
    state: &Mutex<MapPhase>,
) {
    loop {
        // Claim a task (or decide to wait / exit).
        let claimed: Option<(usize, Locality, usize)> = {
            let mut s = state.lock();
            if s.failure.is_some() {
                return;
            }
            match pick_map_task(topology, tracker.node, &s.pending, splits) {
                Some((pos, locality)) => {
                    let split_idx = s.pending.swap_remove(pos);
                    s.outstanding += 1;
                    Some((split_idx, locality, s.attempts[split_idx]))
                }
                None => {
                    // Nothing pending. If other workers are still running
                    // tasks, one of those could fail and requeue, so wait;
                    // if nothing is outstanding either, the phase is over.
                    if s.outstanding == 0 {
                        return;
                    }
                    None
                }
            }
        };

        let (split_idx, locality, attempt) = match claimed {
            Some(c) => c,
            None => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        let task = format!("map-{split_idx:05}");

        // Execute the task outside the lock.
        let outcome = run_map_task(
            fs,
            &splits[split_idx],
            &*job.mapper,
            &*job.partitioner,
            partitions,
        )
        .and_then(|mut output| {
            if map_only {
                // Map-only jobs commit their bucket straight to a part file,
                // one per map task, as Hadoop does.
                let records = std::mem::take(&mut output.partitions[0]);
                let final_path = format!("{output_dir}/part-m-{split_idx:05}");
                let bytes =
                    shuffle::commit_records(fs, output_dir, &task, attempt, &final_path, &records)?;
                Ok((output, Some((final_path, bytes, records.len() as u64))))
            } else {
                // Sort each bucket, run the spill-time combiner, and commit
                // the spill file for the reducers to pull from.
                for bucket in output.partitions.iter_mut() {
                    shuffle::sort_run(bucket);
                }
                if let Some(combiner) = &job.config.combiner {
                    for bucket in output.partitions.iter_mut() {
                        let combined = shuffle::combine_run(std::mem::take(bucket), &**combiner)?;
                        output.combine_input_records += combined.input_records;
                        output.combine_output_records += combined.output_records;
                        *bucket = combined.records;
                    }
                }
                let (bytes, records) = shuffle::commit_spill(
                    fs,
                    output_dir,
                    split_idx,
                    &task,
                    attempt,
                    &output.partitions,
                )?;
                output.spilled_bytes = bytes;
                output.spilled_records = records;
                output.partitions.clear(); // the data now lives in the spill
                Ok((output, None))
            }
        });
        if outcome.is_err() {
            // Clean the attempt's scratch before anyone retries the task.
            shuffle::discard_attempt(fs, output_dir, &task, attempt);
        }

        let mut s = state.lock();
        s.outstanding -= 1;
        match outcome {
            Ok((output, map_written)) => {
                s.locality.record(locality);
                if let Some((path, bytes, records)) = map_written {
                    s.output_files.push(path);
                    s.map_output_bytes += bytes;
                    s.map_output_records += records;
                }
                s.results[split_idx] = Some(output);
                s.committed[split_idx] = true;
            }
            Err(err) => {
                s.attempts[split_idx] += 1;
                s.retries += 1;
                if s.attempts[split_idx] >= max_attempts {
                    s.failure = Some(MrError::TaskFailed {
                        task: format!("map-{split_idx}"),
                        attempts: s.attempts[split_idx],
                        last_error: err.to_string(),
                    });
                } else {
                    s.pending.push(split_idx);
                }
            }
        }
    }
}

/// What one successful reduce-side fetch collected.
struct FetchedPartition {
    /// One key-sorted run per map task, in map-id order.
    runs: Vec<Vec<(String, String)>>,
    segments: u64,
    round_trips: u64,
    bytes: u64,
}

/// Pull partition `partition`'s segment from every map task's spill,
/// fetching each as soon as its map commits. Returns `Ok(None)` when the map
/// phase failed (the job is going down; nothing to reduce).
fn fetch_partition(
    fs: &dyn DistFs,
    output_dir: &str,
    partition: usize,
    num_maps: usize,
    partitions: usize,
    map_state: &Mutex<MapPhase>,
) -> MrResult<Option<FetchedPartition>> {
    let mut runs: Vec<Option<Vec<(String, String)>>> = (0..num_maps).map(|_| None).collect();
    let mut fetched = 0usize;
    let mut segments = 0u64;
    let mut round_trips = 0u64;
    let mut bytes = 0u64;
    while fetched < num_maps {
        let (available, map_failed) = {
            let m = map_state.lock();
            let available: Vec<usize> = (0..num_maps)
                .filter(|&i| m.committed[i] && runs[i].is_none())
                .collect();
            (available, m.failure.is_some())
        };
        if available.is_empty() {
            if map_failed {
                return Ok(None);
            }
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        for map_id in available {
            let path = shuffle::spill_path(output_dir, map_id);
            let segment = shuffle::read_segment(fs, &path, partition, partitions)?;
            segments += 1;
            round_trips += segment.round_trips;
            bytes += segment.bytes;
            runs[map_id] = Some(segment.records);
            fetched += 1;
        }
    }
    Ok(Some(FetchedPartition {
        runs: runs
            .into_iter()
            .map(|r| r.expect("all segments fetched"))
            .collect(),
        segments,
        round_trips,
        bytes,
    }))
}

/// Worker loop executed by every reduce slot: claim a partition, pull its
/// segments as map spills commit, k-way-merge the sorted runs, reduce, and
/// rename-commit the part file.
#[allow(clippy::too_many_arguments)]
fn reduce_worker_loop(
    fs: &dyn DistFs,
    job: &Job,
    output_dir: &str,
    num_maps: usize,
    partitions: usize,
    max_attempts: usize,
    map_state: &Mutex<MapPhase>,
    state: &Mutex<ReducePhase>,
) {
    loop {
        // The job is failing once either phase records a permanent failure.
        if map_state.lock().failure.is_some() {
            return;
        }
        let claimed = {
            let mut s = state.lock();
            if s.failure.is_some() || s.done == partitions {
                return;
            }
            s.pending.pop().map(|p| (p, s.attempts[p]))
        };
        let (partition, attempt) = match claimed {
            Some(c) => c,
            None => {
                // Partitions are running on other slots; one could fail and
                // requeue, so poll until the phase settles.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        let task = format!("reduce-{partition:05}");

        let outcome = fetch_partition(fs, output_dir, partition, num_maps, partitions, map_state)
            .and_then(|fetched| {
                let Some(fetched) = fetched else {
                    return Ok(None); // map phase failed; abort quietly
                };
                let merge_runs = fetched.runs.iter().filter(|r| !r.is_empty()).count() as u64;
                let merged = shuffle::merge_runs(fetched.runs);
                let records = shuffle::reduce_merged(merged, &*job.reducer)?;
                let final_path = format!("{output_dir}/part-r-{partition:05}");
                let bytes =
                    shuffle::commit_records(fs, output_dir, &task, attempt, &final_path, &records)?;
                Ok(Some((
                    final_path,
                    bytes,
                    records.len() as u64,
                    fetched.segments,
                    merge_runs,
                    fetched.round_trips,
                    fetched.bytes,
                )))
            });
        if outcome.is_err() {
            shuffle::discard_attempt(fs, output_dir, &task, attempt);
        }

        let mut s = state.lock();
        match outcome {
            Ok(None) => return,
            Ok(Some((path, bytes, records, segments, merge_runs, round_trips, read_bytes))) => {
                s.done += 1;
                s.output_bytes += bytes;
                s.output_records += records;
                s.output_files.push(path);
                s.segments_fetched += segments;
                s.merge_runs += merge_runs;
                s.read_round_trips += round_trips;
                s.read_bytes += read_bytes;
            }
            Err(err) => {
                s.attempts[partition] += 1;
                s.retries += 1;
                if s.attempts[partition] >= max_attempts {
                    s.failure = Some(MrError::TaskFailed {
                        task: format!("reduce-{partition}"),
                        attempts: s.attempts[partition],
                        last_error: err.to_string(),
                    });
                } else {
                    s.pending.push(partition);
                }
            }
        }
    }
}
