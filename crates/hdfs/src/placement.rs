//! HDFS's rack-aware replica placement policy.
//!
//! The paper contrasts BlobSeer's load-balancing page distribution with HDFS's
//! policy: "the first replica of a chunk is always written locally; for fault
//! tolerance, the second replica is stored on a datanode in the same rack as
//! the first replica, and the third copy is sent to a datanode belonging to a
//! different rack (randomly chosen)" (§IV-B). This module implements exactly
//! that policy (plus a uniform-random fallback used when the cluster is too
//! small to satisfy a constraint), so the baseline reproduces the write
//! hot-spot behaviour the paper measures.

use crate::datanode::{Datanode, DatanodeId};
use parking_lot::Mutex;
use simcluster::topology::ClusterTopology;
use simcluster::NodeId;
use std::sync::Arc;

/// Deterministic xorshift generator so that experiment runs are reproducible.
#[derive(Debug)]
pub struct DeterministicRng {
    state: Mutex<u64>,
}

impl DeterministicRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        DeterministicRng {
            state: Mutex::new(seed.max(1)),
        }
    }

    /// Next pseudo-random value.
    pub fn next(&self) -> u64 {
        let mut s = self.state.lock();
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    /// A pseudo-random index below `bound` (bound must be non-zero).
    pub fn below(&self, bound: usize) -> usize {
        (self.next() as usize) % bound
    }
}

/// The replica placement engine used by the namenode.
pub struct PlacementPolicy {
    topology: ClusterTopology,
    rng: DeterministicRng,
}

impl PlacementPolicy {
    /// Create a policy over the given topology.
    pub fn new(topology: &ClusterTopology, seed: u64) -> Self {
        PlacementPolicy {
            topology: topology.clone(),
            rng: DeterministicRng::new(seed),
        }
    }

    /// Choose `replication` datanodes for a chunk written by a client on
    /// `writer_node`:
    ///
    /// 1. a datanode co-located with the writer (or, failing that, the first
    ///    live datanode),
    /// 2. a different datanode in the same rack,
    /// 3. a datanode in a different rack, chosen at random,
    /// 4. further replicas: random live datanodes not yet chosen.
    pub fn choose(
        &self,
        datanodes: &[Arc<Datanode>],
        replication: usize,
        writer_node: NodeId,
    ) -> Vec<DatanodeId> {
        let live: Vec<&Arc<Datanode>> = datanodes.iter().filter(|d| d.is_alive()).collect();
        if live.is_empty() {
            return Vec::new();
        }
        let replication = replication.min(live.len());
        let writer_rack = self.topology.rack_of(writer_node);
        let mut chosen: Vec<DatanodeId> = Vec::with_capacity(replication);

        // First replica: local to the writer if possible.
        let local = live.iter().find(|d| d.node() == writer_node);
        match local {
            Some(d) => chosen.push(d.id()),
            None => {
                // No datanode on the writer's machine: HDFS picks a random
                // one; stay deterministic by using the seeded RNG.
                let idx = self.rng.below(live.len());
                chosen.push(live[idx].id());
            }
        }

        // Second replica: same rack as the writer, different datanode.
        if replication >= 2 {
            let same_rack: Vec<&&Arc<Datanode>> = live
                .iter()
                .filter(|d| {
                    !chosen.contains(&d.id()) && self.topology.rack_of(d.node()) == writer_rack
                })
                .collect();
            if let Some(d) = pick(&self.rng, &same_rack) {
                chosen.push(d.id());
            }
        }

        // Third replica: a different rack, randomly chosen.
        if replication >= 3 && chosen.len() < replication {
            let other_rack: Vec<&&Arc<Datanode>> = live
                .iter()
                .filter(|d| {
                    !chosen.contains(&d.id()) && self.topology.rack_of(d.node()) != writer_rack
                })
                .collect();
            if let Some(d) = pick(&self.rng, &other_rack) {
                chosen.push(d.id());
            }
        }

        // Fill any remaining slots with random live datanodes.
        while chosen.len() < replication {
            let remaining: Vec<&&Arc<Datanode>> =
                live.iter().filter(|d| !chosen.contains(&d.id())).collect();
            match pick(&self.rng, &remaining) {
                Some(d) => chosen.push(d.id()),
                None => break,
            }
        }
        chosen
    }

    /// Order replica holders by proximity to a reader (closest first) — HDFS
    /// clients read from the nearest replica.
    pub fn order_by_proximity(
        &self,
        reader: NodeId,
        mut nodes: Vec<(DatanodeId, NodeId)>,
    ) -> Vec<DatanodeId> {
        nodes.sort_by_key(|(_, n)| self.topology.proximity(reader, *n));
        nodes.into_iter().map(|(d, _)| d).collect()
    }
}

fn pick<'a>(
    rng: &DeterministicRng,
    candidates: &[&'a &Arc<Datanode>],
) -> Option<&'a Arc<Datanode>> {
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.below(candidates.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 racks x 4 nodes, one datanode per node.
    fn setup() -> (ClusterTopology, Vec<Arc<Datanode>>) {
        let topo = ClusterTopology::builder()
            .sites(1)
            .racks_per_site(2)
            .nodes_per_rack(4)
            .build();
        let datanodes: Vec<Arc<Datanode>> = topo
            .all_nodes()
            .enumerate()
            .map(|(i, n)| Arc::new(Datanode::in_memory(DatanodeId(i as u32), n)))
            .collect();
        (topo, datanodes)
    }

    #[test]
    fn first_replica_is_local() {
        let (topo, datanodes) = setup();
        let policy = PlacementPolicy::new(&topo, 42);
        for writer in 0..8u32 {
            let replicas = policy.choose(&datanodes, 3, NodeId(writer));
            assert_eq!(replicas.len(), 3);
            assert_eq!(
                replicas[0],
                DatanodeId(writer),
                "first replica must be local"
            );
        }
    }

    #[test]
    fn second_replica_same_rack_third_other_rack() {
        let (topo, datanodes) = setup();
        let policy = PlacementPolicy::new(&topo, 7);
        let writer = NodeId(1); // rack 0 holds nodes 0..4
        for _ in 0..20 {
            let replicas = policy.choose(&datanodes, 3, writer);
            let rack_of = |d: DatanodeId| topo.rack_of(datanodes[d.0 as usize].node());
            assert_eq!(rack_of(replicas[0]), topo.rack_of(writer));
            assert_eq!(
                rack_of(replicas[1]),
                topo.rack_of(writer),
                "second replica stays in rack"
            );
            assert_ne!(
                rack_of(replicas[2]),
                topo.rack_of(writer),
                "third replica leaves the rack"
            );
            // All replicas distinct.
            let unique: std::collections::HashSet<_> = replicas.iter().collect();
            assert_eq!(unique.len(), 3);
        }
    }

    #[test]
    fn replication_capped_by_live_datanodes() {
        let (topo, datanodes) = setup();
        let policy = PlacementPolicy::new(&topo, 3);
        let replicas = policy.choose(&datanodes[..2], 5, NodeId(0));
        assert_eq!(replicas.len(), 2);
    }

    #[test]
    fn dead_datanodes_are_skipped() {
        let (topo, datanodes) = setup();
        let policy = PlacementPolicy::new(&topo, 11);
        datanodes[0].kill();
        let replicas = policy.choose(&datanodes, 3, NodeId(0));
        assert!(
            !replicas.contains(&DatanodeId(0)),
            "dead local datanode must be skipped"
        );
        assert_eq!(replicas.len(), 3);
    }

    #[test]
    fn no_live_datanodes_returns_empty() {
        let (topo, datanodes) = setup();
        for d in &datanodes {
            d.kill();
        }
        let policy = PlacementPolicy::new(&topo, 1);
        assert!(policy.choose(&datanodes, 3, NodeId(0)).is_empty());
    }

    #[test]
    fn reads_prefer_the_closest_replica() {
        let (topo, datanodes) = setup();
        let policy = PlacementPolicy::new(&topo, 5);
        let holders: Vec<(DatanodeId, NodeId)> = vec![
            (DatanodeId(7), NodeId(7)),
            (DatanodeId(0), NodeId(0)),
            (DatanodeId(2), NodeId(2)),
        ];
        // Reader on node 0: its own datanode first, then same-rack node 2,
        // then remote-rack node 7.
        let ordered = policy.order_by_proximity(NodeId(0), holders);
        assert_eq!(ordered, vec![DatanodeId(0), DatanodeId(2), DatanodeId(7)]);
        let _ = datanodes;
    }

    #[test]
    fn deterministic_rng_is_reproducible() {
        let a = DeterministicRng::new(99);
        let b = DeterministicRng::new(99);
        let seq_a: Vec<u64> = (0..10).map(|_| a.next()).collect();
        let seq_b: Vec<u64> = (0..10).map(|_| b.next()).collect();
        assert_eq!(seq_a, seq_b);
        // below() respects its bound.
        for _ in 0..100 {
            assert!(a.below(7) < 7);
        }
    }
}
