//! E7 — speculative execution under injected stragglers, on virtual time.
//!
//! Hadoop's headline latency defense is speculative re-execution of
//! straggling tasks (the paper's framework, §II-A); this experiment measures
//! what it buys over the storage-materialized shuffle. A [`SlowFs`] wrapper
//! injects virtual-clock delays into chosen task attempts (first attempts of
//! a few map tasks, plus reduce partition 0), and the whole job runs under a
//! pumped [`SimClock`] — completion times below are *simulated seconds*,
//! identical in shape to a real deployment with slow nodes but costing
//! milliseconds of real time and zero nondeterministic sleeps.
//!
//! For each backend (BSFS, HDFS) the same stragglers are injected twice:
//! speculation off, then on (clone a task once it runs `1.5 x` the median of
//! its completed peers). Reported: simulated completion time, speculative
//! launches/wins, and wasted attempt-time.
//!
//! `BENCH_SMOKE=1` shrinks everything to a does-it-run configuration (CI).

use mapreduce::jobtracker::JobTracker;
use mapreduce::{DistFs, SlowestFactorPolicy};
use simcluster::clock::SimClock;
use simcluster::metrics::{completion_table, CompletionRecord};
use std::sync::Arc;
use std::time::Duration;
use workloads::{word_count_job, DelayRule, SlowFs, TextGenerator};

fn main() {
    let smoke = bench::smoke_mode();
    let (lines, reducers, split_size) = if smoke {
        (400, 2, 2 * 1024)
    } else {
        (20_000, 4, 64 * 1024)
    };
    let straggler_delay = Duration::from_secs(60);
    let policy = Arc::new(SlowestFactorPolicy {
        slowest_factor: 1.5,
        min_runtime: Duration::from_secs(5),
        min_completed: 1,
    });

    let mut generator = TextGenerator::new(2026);
    let text = generator.sentences(lines);

    println!(
        "== E7: stragglers and speculative execution ({lines} lines, {reducers} reducers, \
         3 map stragglers + 1 reduce straggler x {}s, SimClock) ==",
        straggler_delay.as_secs()
    );
    let mut records: Vec<CompletionRecord> = Vec::new();
    for backend in ["BSFS", "HDFS"] {
        let mut completion = Vec::new();
        for speculate in [false, true] {
            // Fresh deployment per run so output dirs and counters are clean.
            let (bsfs, hdfs) = bench::app_backends(1 << 20);
            let inner: Box<dyn DistFs> = if backend == "BSFS" {
                Box::new(bsfs)
            } else {
                Box::new(hdfs)
            };
            let clock = Arc::new(SimClock::new());
            // The same injection schedule for every run: first attempts of
            // map tasks 0..=2 and of reduce partition 0 straggle.
            let mut rules: Vec<DelayRule> = (0..3)
                .map(|t| DelayRule::create(format!("attempt-map-{t:05}-0"), straggler_delay))
                .collect();
            rules.push(DelayRule::create("attempt-reduce-00000-0", straggler_delay));
            let fs = SlowFs::new(inner, clock.clone(), rules);
            fs.write_file("/input/text.txt", text.as_bytes()).unwrap();

            let mut job = word_count_job(
                vec!["/input/text.txt".into()],
                "/wc-out",
                reducers,
                split_size,
            );
            if speculate {
                job.config.speculation = Some(policy.clone());
            }
            let jt = JobTracker::new(&bench::app_topology()).with_clock(clock.clone());
            let result = clock.drive(Duration::from_millis(250), || {
                jt.run(&fs, &job).expect("job")
            });

            let label = if speculate {
                "speculation on "
            } else {
                "speculation off"
            };
            println!(
                "{backend} {label}: {:8.3} simulated s | {}",
                result.completion_secs(),
                bench::shuffle_report(&result)
            );
            records.push(CompletionRecord {
                system: format!("{backend} ({})", label.trim()),
                application: result.job_name.clone(),
                map_tasks: result.map_tasks,
                reduce_tasks: result.reduce_tasks,
                completion_secs: result.completion_secs(),
            });
            completion.push(result.completion_secs());
        }
        assert!(
            completion[1] < completion[0],
            "{backend}: speculation must cut simulated completion time \
             (off {:.3}s, on {:.3}s)",
            completion[0],
            completion[1]
        );
        println!(
            "{backend}: speculation cut completion {:.3}s -> {:.3}s (-{:.1}%)",
            completion[0],
            completion[1],
            100.0 * (1.0 - completion[1] / completion[0])
        );
    }
    println!();
    print!("{}", completion_table(&records));

    #[derive(serde::Serialize)]
    struct Snapshot {
        experiment: &'static str,
        smoke: bool,
        runs: Vec<CompletionRecord>,
    }
    bench::emit_bench_json(
        "E7",
        &Snapshot {
            experiment: "E7",
            smoke,
            runs: records,
        },
    );
}
