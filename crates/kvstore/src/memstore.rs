//! Sharded in-memory page store.
//!
//! Providers under heavy concurrency (hundreds of clients pushing pages) need
//! the store itself to not become a serialization point. The map is therefore
//! split into a fixed number of shards, each behind its own `RwLock`; a key's
//! shard is chosen by hashing, so independent keys almost never contend.

use crate::error::KvResult;
use crate::PageStore;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independent shards. A power of two so that the modulo is a mask.
const SHARDS: usize = 64;

/// In-memory, thread-safe key-value store.
pub struct MemStore {
    shards: Vec<RwLock<HashMap<Vec<u8>, Bytes>>>,
    data_bytes: AtomicU64,
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStore {
    /// Create an empty store.
    pub fn new() -> Self {
        MemStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            data_bytes: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & (SHARDS - 1)
    }

    /// Iterate over a snapshot of all keys (used by tests and compaction-style
    /// maintenance). The snapshot is not atomic across shards.
    pub fn keys(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().keys().cloned());
        }
        out
    }

    /// Remove every entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.data_bytes.store(0, Ordering::Relaxed);
    }
}

impl PageStore for MemStore {
    fn put(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        let shard = &self.shards[self.shard_of(key)];
        let mut guard = shard.write();
        let new_len = value.len() as u64;
        match guard.insert(key.to_vec(), value) {
            Some(old) => {
                // Replacing: adjust by the delta.
                let old_len = old.len() as u64;
                if new_len >= old_len {
                    self.data_bytes
                        .fetch_add(new_len - old_len, Ordering::Relaxed);
                } else {
                    self.data_bytes
                        .fetch_sub(old_len - new_len, Ordering::Relaxed);
                }
            }
            None => {
                self.data_bytes.fetch_add(new_len, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> KvResult<Option<Bytes>> {
        let shard = &self.shards[self.shard_of(key)];
        Ok(shard.read().get(key).cloned())
    }

    fn delete(&self, key: &[u8]) -> KvResult<bool> {
        let shard = &self.shards[self.shard_of(key)];
        match shard.write().remove(key) {
            Some(old) => {
                self.data_bytes
                    .fetch_sub(old.len() as u64, Ordering::Relaxed);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn data_bytes(&self) -> u64 {
        self.data_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_delete_roundtrip() {
        let s = MemStore::new();
        assert!(s.get(b"a").unwrap().is_none());
        s.put(b"a", Bytes::from_static(b"alpha")).unwrap();
        s.put(b"b", Bytes::from_static(b"beta")).unwrap();
        assert_eq!(s.get(b"a").unwrap().unwrap(), Bytes::from_static(b"alpha"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.data_bytes(), 9);
        assert!(s.delete(b"a").unwrap());
        assert!(s.get(b"a").unwrap().is_none());
        assert_eq!(s.len(), 1);
        assert_eq!(s.data_bytes(), 4);
    }

    #[test]
    fn overwrite_adjusts_byte_accounting() {
        let s = MemStore::new();
        s.put(b"k", Bytes::from_static(b"1234567890")).unwrap();
        assert_eq!(s.data_bytes(), 10);
        s.put(b"k", Bytes::from_static(b"abc")).unwrap();
        assert_eq!(s.data_bytes(), 3);
        s.put(b"k", Bytes::from_static(b"abcdef")).unwrap();
        assert_eq!(s.data_bytes(), 6);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn keys_and_clear() {
        let s = MemStore::new();
        for i in 0..100u32 {
            s.put(format!("key-{i}").as_bytes(), Bytes::from(vec![0u8; 8]))
                .unwrap();
        }
        assert_eq!(s.keys().len(), 100);
        s.clear();
        assert_eq!(s.len(), 0);
        assert_eq!(s.data_bytes(), 0);
    }

    #[test]
    fn concurrent_writers_on_distinct_keys() {
        let s = Arc::new(MemStore::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let key = format!("t{t}-k{i}");
                        s.put(key.as_bytes(), Bytes::from(vec![t as u8; 16]))
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.len(), 8 * 500);
        assert_eq!(s.data_bytes(), 8 * 500 * 16);
    }

    #[test]
    fn concurrent_readers_and_writers_on_same_key() {
        let s = Arc::new(MemStore::new());
        s.put(b"hot", Bytes::from_static(b"initial")).unwrap();
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        s.put(b"hot", Bytes::from(format!("value-{t}-{i}")))
                            .unwrap();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        // The value must always be present and intact.
                        let v = s.get(b"hot").unwrap().unwrap();
                        assert!(!v.is_empty());
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        assert_eq!(s.len(), 1);
    }
}
