//! Criterion bench for E5: the Distributed Grep MapReduce job, BSFS vs HDFS
//! (real execution, laptop scale).

use criterion::{criterion_group, criterion_main, Criterion};
use mapreduce::fs::DistFs;
use workloads::TextGenerator;

fn input_text() -> String {
    let mut generator = TextGenerator::new(5);
    let mut text = String::new();
    for i in 0..2_000 {
        if i % 11 == 0 {
            text.push_str("a line with the corbel token\n");
        } else {
            text.push_str(&generator.sentence());
            text.push('\n');
        }
    }
    text
}

fn bench_grep(c: &mut Criterion) {
    let text = input_text();
    // One reported run per backend: the storage-materialized shuffle's
    // counters (spill volume, segment fetches) alongside the timing samples.
    let (bsfs, hdfs) = bench::app_backends(64 * 1024);
    for fs in [&bsfs as &dyn DistFs, &hdfs as &dyn DistFs] {
        fs.write_file("/in/huge.txt", text.as_bytes()).unwrap();
        let job = workloads::distributed_grep_job(
            vec!["/in/huge.txt".into()],
            "/out",
            "corbel token",
            64 * 1024,
        );
        let (result, _) = bench::run_job_on(fs, &bench::app_topology(), &job);
        println!("{}", bench::shuffle_report(&result));
    }
    let mut group = c.benchmark_group("E5_distributed_grep");
    group.sample_size(10);
    group.bench_function("BSFS", |b| {
        b.iter(|| {
            let (bsfs, _) = bench::app_backends(64 * 1024);
            bsfs.write_file("/in/huge.txt", text.as_bytes()).unwrap();
            let job = workloads::distributed_grep_job(
                vec!["/in/huge.txt".into()],
                "/out",
                "corbel token",
                64 * 1024,
            );
            bench::run_job_on(&bsfs as &dyn DistFs, &bench::app_topology(), &job)
        })
    });
    group.bench_function("HDFS", |b| {
        b.iter(|| {
            let (_, hdfs) = bench::app_backends(64 * 1024);
            hdfs.write_file("/in/huge.txt", text.as_bytes()).unwrap();
            let job = workloads::distributed_grep_job(
                vec!["/in/huge.txt".into()],
                "/out",
                "corbel token",
                64 * 1024,
            );
            bench::run_job_on(&hdfs as &dyn DistFs, &bench::app_topology(), &job)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_grep);
criterion_main!(benches);
