//! Concurrency stress tests for the sharded version manager, exercised both
//! directly and through the full BlobSeer write path.
//!
//! These are the regression tests for the PR-2 bug class: writers hanging on
//! deleted blobs, aborted reservations leaking blob size, and cross-blob
//! interference through the (formerly global) version-manager lock.

use blobseer::version_manager::WriteIntent;
use blobseer::{BlobSeer, BlobSeerConfig, BlobSeerError, Version, VersionManager};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Appends across many blobs from many threads: every blob's history must be
/// gap-free and sized exactly by its own appends, and shard counters must
/// account for every lock acquisition.
#[test]
fn concurrent_appends_across_many_blobs() {
    let vm = Arc::new(VersionManager::with_shards(8));
    let blobs: Vec<_> = (0..32).map(|_| vm.create_blob()).collect();
    let appends_per_thread = 40;
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let vm = Arc::clone(&vm);
            let blobs = blobs.clone();
            std::thread::spawn(move || {
                for i in 0..appends_per_thread {
                    // Each thread walks the blobs in a different order.
                    let blob = blobs[(t * 7 + i * 3) % blobs.len()];
                    let ticket = vm.reserve(blob, WriteIntent::Append { len: 8 }).unwrap();
                    std::thread::yield_now();
                    vm.commit(&ticket, None).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut total_versions = 0;
    for blob in &blobs {
        let latest = vm.latest(*blob).unwrap();
        // Gap-free history: latest version == number of appends to the blob,
        // and size is exactly 8 bytes per append.
        assert_eq!(latest.size, latest.version.0 * 8);
        total_versions += latest.version.0;
    }
    assert_eq!(total_versions, 8 * appends_per_thread as u64);
    let stats = vm.contention_stats();
    assert!(stats.lock_acquisitions > 0);
    // Commits notify their own shard only; 8 shards all saw traffic.
    assert!(vm.shard_stats().iter().all(|s| s.lock_acquisitions > 0));
}

/// Deleting a blob must wake writers blocked on a predecessor version and
/// surface `UnknownBlob` instead of hanging them forever (PR-2 bugfix).
#[test]
fn delete_under_wait_wakes_all_blocked_writers() {
    let vm = Arc::new(VersionManager::new());
    let blob = vm.create_blob();
    // v1 is reserved but never committed, so waiters on v1 block.
    let _t1 = vm.reserve(blob, WriteIntent::Append { len: 4 }).unwrap();
    let (tx, rx) = mpsc::channel();
    let waiters: Vec<_> = (0..4)
        .map(|_| {
            let vm = Arc::clone(&vm);
            let tx = tx.clone();
            let ticket = vm.reserve(blob, WriteIntent::Append { len: 4 }).unwrap();
            std::thread::spawn(move || {
                tx.send(vm.wait_for_predecessor(&ticket)).ok();
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    vm.delete_blob(blob).unwrap();
    for _ in 0..4 {
        let result = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("a blocked writer was not woken by delete_blob");
        assert!(matches!(result, Err(BlobSeerError::UnknownBlob(_))));
    }
    for w in waiters {
        w.join().unwrap();
    }
}

/// Aborts racing concurrent appends: whatever interleaving occurs, committed
/// data must stay intact, the history gap-free, and a trailing abort must
/// not leave a phantom range that inflates the blob size.
#[test]
fn abort_under_concurrent_append_keeps_sizes_consistent() {
    let vm = Arc::new(VersionManager::new());
    let blob = vm.create_blob();
    let committed_bytes = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let vm = Arc::clone(&vm);
            let committed_bytes = Arc::clone(&committed_bytes);
            std::thread::spawn(move || {
                for i in 0..20 {
                    let ticket = vm.reserve(blob, WriteIntent::Append { len: 16 }).unwrap();
                    std::thread::yield_now();
                    if (t + i) % 3 == 0 {
                        vm.abort(&ticket).unwrap();
                    } else {
                        vm.commit(&ticket, None).unwrap();
                        committed_bytes.fetch_add(16, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let latest = vm.latest(blob).unwrap();
    // Every reservation became a version (commit or alias): 6*20 total.
    assert_eq!(latest.version, Version(120));
    // The final size can cover holes left by aborts sandwiched between
    // commits, but never exceeds the total reserved range, and a fresh
    // append must land at (and re-expose) the current end exactly.
    assert!(latest.size <= 120 * 16);
    let t = vm.reserve(blob, WriteIntent::Append { len: 16 }).unwrap();
    assert_eq!(t.range.offset, t.prev_size);
    vm.commit(&t, None).unwrap();
    assert_eq!(vm.latest(blob).unwrap().size, t.new_size);
}

/// Regression for the abort size-leak through the full client write path:
/// after an append is aborted, the next append must be readable back to back
/// with the data before it — no phantom hole, no inflated size.
#[test]
fn aborted_append_leaves_no_hole_in_the_blob() {
    let sys = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(16));
    let client = sys.client();
    let blob = client.create(Some(16)).unwrap();
    client.append(blob, &[b'A'; 32]).unwrap();

    // Reserve an append by hand and abort it (a client whose data push
    // failed does exactly this).
    let vm = sys.version_manager();
    let ticket = vm.reserve(blob, WriteIntent::Append { len: 64 }).unwrap();
    vm.abort(&ticket).unwrap();

    // Pre-fix: the aborted 64-byte range stayed reserved, so this append
    // landed at offset 96 and published size 112 with a 64-byte hole that
    // no one ever wrote.
    client.append(blob, &[b'B'; 16]).unwrap();
    assert_eq!(client.size(blob).unwrap(), 48, "aborted append leaked size");
    let all = client.read_latest(blob, 0, 48).unwrap();
    assert_eq!(&all[..32], &[b'A'; 32][..]);
    assert_eq!(&all[32..], &[b'B'; 16][..]);
}

/// Writers on different blobs must not serialize against each other through
/// the version manager: a blob whose predecessor never commits blocks its
/// own waiter, while every other blob keeps publishing.
#[test]
fn a_stuck_blob_does_not_block_other_blobs() {
    let vm = Arc::new(VersionManager::new());
    let stuck = vm.create_blob();
    let _never_committed = vm.reserve(stuck, WriteIntent::Append { len: 1 }).unwrap();
    let blocked_ticket = vm.reserve(stuck, WriteIntent::Append { len: 1 }).unwrap();
    let vm2 = Arc::clone(&vm);
    let (tx, rx) = mpsc::channel();
    let waiter = std::thread::spawn(move || {
        tx.send(()).ok();
        vm2.wait_for_predecessor(&blocked_ticket)
    });
    rx.recv().unwrap();
    std::thread::sleep(Duration::from_millis(20));

    // With the waiter parked, 200 writes across other blobs complete.
    for _ in 0..200 {
        let blob = vm.create_blob();
        let t = vm.reserve(blob, WriteIntent::Append { len: 4 }).unwrap();
        vm.commit(&t, None).unwrap();
        assert_eq!(vm.latest(blob).unwrap().size, 4);
    }
    // Unblock the waiter by deleting the stuck blob.
    vm.delete_blob(stuck).unwrap();
    assert!(matches!(
        waiter.join().unwrap(),
        Err(BlobSeerError::UnknownBlob(_))
    ));
}
