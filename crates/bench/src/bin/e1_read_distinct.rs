//! E1 — microbenchmark: concurrent clients reading from *different files*
//! (the access pattern of a map phase over per-task input files, paper §IV-B).
//!
//! Runs the paper-scale sweep (1..250 clients on 270 simulated Grid'5000
//! nodes, 1 GiB per client) for BSFS and HDFS and prints the throughput
//! series the paper plots, then a laptop-scale real-data section with the
//! read-path instrumentation (frontier-batched metadata round trips and
//! cache hit rate, with the cache on and off).

use workloads::microbench::AccessPattern;

fn main() {
    // BENCH_SMOKE=1 runs a tiny sweep (CI uses it as a does-it-run guard);
    // unset, empty, or "0" runs the full paper-scale sweep.
    let smoke = bench::smoke_mode();
    let client_counts = bench::sweep_client_counts(smoke);
    let (bsfs, hdfs, records) =
        bench::paper_sweep("E1", AccessPattern::ReadDistinctFiles, client_counts);
    bench::print_sweep(
        "E1",
        "concurrent reads from different files",
        &bsfs,
        &hdfs,
        &records,
    );
    let (clients, bytes_per_client) = if smoke { (2, 256 * 1024) } else { (8, 4 << 20) };
    let read_path =
        bench::read_path_section(AccessPattern::ReadDistinctFiles, clients, bytes_per_client);

    #[derive(serde::Serialize)]
    struct Snapshot {
        experiment: &'static str,
        smoke: bool,
        sweep: Vec<bench::SweepRecord>,
        read_path: Vec<bench::ReadPathRecord>,
    }
    bench::emit_bench_json(
        "E1",
        &Snapshot {
            experiment: "E1",
            smoke,
            sweep: records,
            read_path,
        },
    );
}
