//! Deterministic flow-level network simulation.
//!
//! The paper's evaluation measures the aggregate throughput achieved by 1–250
//! concurrent clients reading or writing through BSFS and HDFS on a 270-node
//! deployment. At that scale the interesting dynamics are *not* per-packet:
//! they are how the storage system's placement decisions spread (or
//! concentrate) flows over node NICs and rack uplinks. A flow-level model with
//! max-min fair bandwidth sharing captures exactly that, is deterministic, and
//! simulates hundreds of gigabytes of traffic in milliseconds of real time.
//!
//! ## Model
//!
//! * A **flow** moves `bytes` from a source node to a destination node along
//!   the links given by [`NetworkModel::path`]; it first pays a fixed latency
//!   (during which it consumes no bandwidth) and then receives a data rate.
//! * A **step** is a set of flows issued in parallel plus an optional compute
//!   time; the step completes when all its flows have completed *and* the
//!   compute time has elapsed. This models a client writing a block to `r`
//!   replicas in parallel, or a map task reading its split and then spending
//!   CPU time on it.
//! * A **client process** executes its steps strictly in order, starting at
//!   its `start_at` time.
//! * At every instant the simulator assigns each active flow a rate by
//!   **progressive filling**: repeatedly find the most congested link, give
//!   every unfrozen flow crossing it an equal share of the remaining
//!   capacity, freeze those flows, and continue until all flows are frozen.
//!   This yields the classic max-min fair allocation.
//! * The event loop advances virtual time to the next flow completion, step
//!   completion, or process start, recomputing rates at each event.

use crate::netmodel::{LinkId, NetworkModel};
use crate::time::{SimDuration, SimTime, MICROS_PER_SEC};
use crate::topology::{ClusterTopology, NodeId};
use std::collections::HashMap;

/// A single point-to-point transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Node the bytes leave from.
    pub src: NodeId,
    /// Node the bytes arrive at.
    pub dst: NodeId,
    /// Number of bytes to move.
    pub bytes: u64,
    /// When set, the flow also traverses this node's storage device
    /// ([`LinkId::Disk`]): the destination's disk for a durable write, the
    /// source's disk for a read of durable data. Disks are usually slower
    /// than NICs, so a storage server receiving many chunks becomes a
    /// bottleneck even if its network link has headroom.
    pub storage_end: Option<NodeId>,
}

impl Flow {
    /// A pure network transfer (no storage device on either end).
    pub fn new(src: NodeId, dst: NodeId, bytes: u64) -> Self {
        Flow {
            src,
            dst,
            bytes,
            storage_end: None,
        }
    }

    /// A durable write: the destination's disk is part of the path.
    pub fn write_to_storage(src: NodeId, dst: NodeId, bytes: u64) -> Self {
        Flow {
            src,
            dst,
            bytes,
            storage_end: Some(dst),
        }
    }

    /// A read of durable data: the source's disk is part of the path.
    pub fn read_from_storage(src: NodeId, dst: NodeId, bytes: u64) -> Self {
        Flow {
            src,
            dst,
            bytes,
            storage_end: Some(src),
        }
    }
}

/// One step of a client process: a set of parallel flows and/or a compute
/// phase. The step finishes when every flow has finished and the compute time
/// has elapsed (flows and compute overlap, modelling pipelined I/O + CPU).
#[derive(Debug, Clone, Default)]
pub struct Step {
    /// Flows issued in parallel at the start of the step.
    pub flows: Vec<Flow>,
    /// CPU/disk time that must elapse before the step can complete.
    pub compute: SimDuration,
}

impl Step {
    /// A step consisting of a single transfer.
    pub fn transfer(src: NodeId, dst: NodeId, bytes: u64) -> Self {
        Step {
            flows: vec![Flow::new(src, dst, bytes)],
            compute: SimDuration::ZERO,
        }
    }

    /// A step consisting of several parallel transfers.
    pub fn parallel(flows: Vec<Flow>) -> Self {
        Step {
            flows,
            compute: SimDuration::ZERO,
        }
    }

    /// A pure compute step (no network traffic).
    pub fn compute(duration: SimDuration) -> Self {
        Step {
            flows: Vec::new(),
            compute: duration,
        }
    }

    /// Attach a compute phase to this step.
    pub fn with_compute(mut self, duration: SimDuration) -> Self {
        self.compute = duration;
        self
    }

    /// Total bytes moved by this step.
    pub fn bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }
}

/// A sequential program of steps executed by one simulated client (or task).
#[derive(Debug, Clone)]
pub struct ClientProcess {
    /// Node the client runs on (informational; flows name their endpoints
    /// explicitly).
    pub home: NodeId,
    /// Virtual time at which the process starts executing its first step.
    pub start_at: SimTime,
    /// Ordered steps.
    pub steps: Vec<Step>,
    /// Optional label used in reports (e.g. "map-17" or "client-3").
    pub label: String,
}

impl ClientProcess {
    /// A process with no steps, starting at time zero.
    pub fn new(home: NodeId) -> Self {
        ClientProcess {
            home,
            start_at: SimTime::ZERO,
            steps: Vec::new(),
            label: String::new(),
        }
    }

    /// Set a human-readable label.
    pub fn labelled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Delay the start of the process.
    pub fn starting_at(mut self, t: SimTime) -> Self {
        self.start_at = t;
        self
    }

    /// Append a step.
    pub fn then(mut self, step: Step) -> Self {
        self.steps.push(step);
        self
    }

    /// Append many steps.
    pub fn then_all(mut self, steps: impl IntoIterator<Item = Step>) -> Self {
        self.steps.extend(steps);
        self
    }

    /// Total bytes transferred by the whole process.
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(Step::bytes).sum()
    }
}

/// Completion record for one process.
#[derive(Debug, Clone)]
pub struct ProcessOutcome {
    /// Label copied from the process.
    pub label: String,
    /// Node the process ran on.
    pub home: NodeId,
    /// When the process started.
    pub started: SimTime,
    /// When its last step completed.
    pub finished: SimTime,
    /// Total bytes it transferred.
    pub bytes: u64,
}

impl ProcessOutcome {
    /// Wall-clock (virtual) duration of the process.
    pub fn duration(&self) -> SimDuration {
        self.finished - self.started
    }

    /// Average throughput of this process in bytes per second of virtual time.
    pub fn throughput(&self) -> f64 {
        let d = self.duration().as_secs_f64();
        if d <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / d
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-process outcomes, in the order the processes were supplied.
    pub processes: Vec<ProcessOutcome>,
}

impl SimReport {
    /// Virtual time at which the last process finished.
    pub fn makespan(&self) -> SimDuration {
        let end = self
            .processes
            .iter()
            .map(|p| p.finished)
            .max()
            .unwrap_or(SimTime::ZERO);
        let start = self
            .processes
            .iter()
            .map(|p| p.started)
            .min()
            .unwrap_or(SimTime::ZERO);
        end - start
    }

    /// Total bytes moved by all processes.
    pub fn total_bytes(&self) -> u64 {
        self.processes.iter().map(|p| p.bytes).sum()
    }

    /// Aggregate throughput: total bytes divided by the makespan.
    pub fn aggregate_throughput(&self) -> f64 {
        let m = self.makespan().as_secs_f64();
        if m <= 0.0 {
            0.0
        } else {
            self.total_bytes() as f64 / m
        }
    }

    /// Mean of the per-process throughputs (the metric the paper plots:
    /// average throughput seen by each individual client).
    pub fn mean_client_throughput(&self) -> f64 {
        if self.processes.is_empty() {
            return 0.0;
        }
        self.processes
            .iter()
            .map(ProcessOutcome::throughput)
            .sum::<f64>()
            / self.processes.len() as f64
    }
}

/// Internal per-flow simulation state.
#[derive(Debug, Clone)]
struct ActiveFlow {
    process: usize,
    path: Vec<LinkId>,
    /// Latency still to pay before bytes start moving (µs).
    latency_left: u64,
    /// Bytes still to move, scaled by `BYTE_SCALE` for sub-byte precision.
    remaining: f64,
    /// Current max-min fair rate in bytes/s (recomputed at every event).
    rate: f64,
}

/// Internal per-process simulation state.
#[derive(Debug)]
struct ProcState {
    steps: Vec<Step>,
    current_step: usize,
    /// Flows of the current step still in progress (indices into `flows`).
    outstanding_flows: usize,
    /// Virtual time at which the current step's compute phase finishes.
    compute_done_at: SimTime,
    started: SimTime,
    finished: Option<SimTime>,
    bytes: u64,
    label: String,
    home: NodeId,
    /// True once the process's start time has been reached and its first step
    /// has been issued.
    launched: bool,
}

/// The flow-level simulator. Construct one per experiment; `run` consumes a
/// set of processes and returns their outcomes.
pub struct FlowSimulator {
    topo: ClusterTopology,
    net: NetworkModel,
}

impl FlowSimulator {
    /// Create a simulator over the given topology and network parameters.
    pub fn new(topo: &ClusterTopology, net: NetworkModel) -> Self {
        FlowSimulator {
            topo: topo.clone(),
            net,
        }
    }

    /// Access the topology (used by harnesses to map logical servers to nodes).
    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    /// Access the network model.
    pub fn network(&self) -> &NetworkModel {
        &self.net
    }

    /// Run the processes to completion and report their outcomes.
    ///
    /// The simulation is deterministic: the same inputs always produce the
    /// same report.
    pub fn run(&mut self, processes: Vec<ClientProcess>) -> SimReport {
        let mut procs: Vec<ProcState> = processes
            .iter()
            .map(|p| ProcState {
                steps: p.steps.clone(),
                current_step: 0,
                outstanding_flows: 0,
                compute_done_at: SimTime::ZERO,
                started: p.start_at,
                finished: None,
                bytes: 0,
                label: p.label.clone(),
                home: p.home,
                launched: false,
            })
            .collect();

        let mut flows: Vec<ActiveFlow> = Vec::new();
        let mut now = SimTime::ZERO;

        // Processes with no steps finish instantly at their start time.
        for p in procs.iter_mut() {
            if p.steps.is_empty() {
                p.finished = Some(p.started);
                p.launched = true;
            }
        }

        loop {
            // Launch processes whose start time has arrived.
            for (idx, p) in procs.iter_mut().enumerate() {
                if !p.launched && p.started <= now {
                    p.launched = true;
                    Self::issue_step(&self.topo, &self.net, idx, p, now, &mut flows);
                }
            }

            // Check whether any step completed (all flows done and compute
            // elapsed) and issue the next one. Loop because issuing a step
            // with zero flows and zero compute completes immediately.
            loop {
                let mut progressed = false;
                for (idx, p) in procs.iter_mut().enumerate() {
                    if p.finished.is_some() || !p.launched {
                        continue;
                    }
                    if p.current_step < p.steps.len()
                        && p.outstanding_flows == 0
                        && p.compute_done_at <= now
                    {
                        p.current_step += 1;
                        if p.current_step >= p.steps.len() {
                            p.finished = Some(now);
                        } else {
                            Self::issue_step(&self.topo, &self.net, idx, p, now, &mut flows);
                        }
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }

            if procs.iter().all(|p| p.finished.is_some()) {
                break;
            }

            // Recompute max-min fair rates for flows past their latency phase.
            self.assign_rates(&mut flows);

            // Find the next event time.
            let mut next_delta_us: u64 = u64::MAX;

            // Future process launches.
            for p in &procs {
                if !p.launched && p.started > now {
                    next_delta_us = next_delta_us.min((p.started - now).as_micros().max(1));
                }
            }
            // Compute completions.
            for p in &procs {
                if p.finished.is_none() && p.launched && p.compute_done_at > now {
                    next_delta_us = next_delta_us.min((p.compute_done_at - now).as_micros().max(1));
                }
            }
            // Flow latency expirations and completions.
            for f in &flows {
                if f.latency_left > 0 {
                    next_delta_us = next_delta_us.min(f.latency_left.max(1));
                } else if f.remaining > 0.0 && f.rate > 0.0 {
                    let secs = f.remaining / f.rate;
                    let us = (secs * MICROS_PER_SEC as f64).ceil() as u64;
                    next_delta_us = next_delta_us.min(us.max(1));
                }
            }

            assert!(
                next_delta_us != u64::MAX,
                "flow simulator stalled: no runnable event but processes unfinished \
                 (this indicates a flow with zero rate on a zero-capacity path)"
            );

            let delta = SimDuration::from_micros(next_delta_us);
            now += delta;

            // Progress flows by `delta`.
            let delta_secs = delta.as_secs_f64();
            let mut completed: Vec<usize> = Vec::new();
            for (i, f) in flows.iter_mut().enumerate() {
                if f.latency_left > 0 {
                    let consumed = f.latency_left.min(next_delta_us);
                    f.latency_left -= consumed;
                    // Any time left in the delta after the latency phase is
                    // ignored; rates are recomputed next iteration, which is a
                    // conservative (slightly pessimistic) approximation.
                    continue;
                }
                if f.remaining > 0.0 {
                    f.remaining -= f.rate * delta_secs;
                    if f.remaining <= 1e-6 {
                        f.remaining = 0.0;
                        completed.push(i);
                    }
                }
            }

            // Remove completed flows (highest index first to keep indices valid).
            for &i in completed.iter().rev() {
                let f = flows.swap_remove(i);
                let p = &mut procs[f.process];
                p.outstanding_flows = p.outstanding_flows.saturating_sub(1);
            }
        }

        SimReport {
            processes: procs
                .into_iter()
                .map(|p| ProcessOutcome {
                    label: p.label,
                    home: p.home,
                    started: p.started,
                    finished: p.finished.expect("all processes finished"),
                    bytes: p.bytes,
                })
                .collect(),
        }
    }

    /// Issue the current step of process `idx`: create its flows and set its
    /// compute deadline.
    fn issue_step(
        topo: &ClusterTopology,
        net: &NetworkModel,
        idx: usize,
        p: &mut ProcState,
        now: SimTime,
        flows: &mut Vec<ActiveFlow>,
    ) {
        let step = &p.steps[p.current_step];
        p.compute_done_at = now + step.compute;
        p.outstanding_flows = 0;
        for flow in &step.flows {
            p.bytes += flow.bytes;
            if flow.bytes == 0 {
                continue;
            }
            let mut path = net.path(topo, flow.src, flow.dst);
            if let Some(storage_node) = flow.storage_end {
                path.push(crate::netmodel::LinkId::Disk(storage_node.0));
            }
            let latency = net.latency(topo.proximity(flow.src, flow.dst));
            flows.push(ActiveFlow {
                process: idx,
                path,
                latency_left: latency.as_micros(),
                remaining: flow.bytes as f64,
                rate: 0.0,
            });
            p.outstanding_flows += 1;
        }
    }

    /// Progressive-filling max-min fair rate allocation.
    ///
    /// Links and flows are mapped to dense indices so that each filling round
    /// touches plain vectors: per-link remaining capacity and unfrozen-flow
    /// counts are maintained incrementally as flows freeze, which keeps the
    /// allocation fast enough to re-run at every event even with hundreds of
    /// concurrent flows (the 250-client paper-scale sweeps).
    fn assign_rates(&self, flows: &mut [ActiveFlow]) {
        // Only flows past their latency phase and with bytes left compete.
        let active: Vec<usize> = flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.latency_left == 0 && f.remaining > 0.0)
            .map(|(i, _)| i)
            .collect();
        for f in flows.iter_mut() {
            f.rate = 0.0;
        }
        if active.is_empty() {
            return;
        }

        // Dense link index.
        let mut link_index: HashMap<LinkId, usize> = HashMap::new();
        let mut capacity: Vec<f64> = Vec::new();
        let mut unfrozen_on_link: Vec<usize> = Vec::new();
        // Per active flow (dense position): its link indices.
        let mut flow_links: Vec<Vec<usize>> = Vec::with_capacity(active.len());
        // Per link: dense positions of the active flows crossing it.
        let mut link_members: Vec<Vec<usize>> = Vec::new();

        for (pos, &flow_idx) in active.iter().enumerate() {
            let mut links = Vec::with_capacity(flows[flow_idx].path.len());
            for &l in &flows[flow_idx].path {
                let li = *link_index.entry(l).or_insert_with(|| {
                    capacity.push(self.net.capacity(l));
                    unfrozen_on_link.push(0);
                    link_members.push(Vec::new());
                    capacity.len() - 1
                });
                capacity[li] = capacity[li].min(self.net.capacity(l));
                unfrozen_on_link[li] += 1;
                link_members[li].push(pos);
                links.push(li);
            }
            flow_links.push(links);
        }

        let num_flows = active.len();
        let mut frozen = vec![false; num_flows];
        let mut rates = vec![0.0f64; num_flows];
        let mut frozen_count = 0usize;

        while frozen_count < num_flows {
            // Bottleneck link: minimal fair share among links with unfrozen
            // flows.
            let mut best_link = usize::MAX;
            let mut best_share = f64::INFINITY;
            for li in 0..capacity.len() {
                if unfrozen_on_link[li] == 0 {
                    continue;
                }
                let share = capacity[li] / unfrozen_on_link[li] as f64;
                if share < best_share {
                    best_share = share;
                    best_link = li;
                }
            }
            if best_link == usize::MAX {
                break; // defensive: every flow crosses at least one link
            }

            // Freeze every unfrozen flow on the bottleneck at the fair share,
            // updating the remaining capacity and counts of all its links.
            let members = std::mem::take(&mut link_members[best_link]);
            for &pos in &members {
                if frozen[pos] {
                    continue;
                }
                frozen[pos] = true;
                frozen_count += 1;
                rates[pos] = best_share;
                for &li in &flow_links[pos] {
                    capacity[li] = (capacity[li] - best_share).max(0.0);
                    unfrozen_on_link[li] -= 1;
                }
            }
        }

        for (pos, &flow_idx) in active.iter().enumerate() {
            flows[flow_idx].rate = rates[pos];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::NetworkModel;
    use crate::topology::ClusterTopology;

    fn topo() -> ClusterTopology {
        ClusterTopology::builder()
            .sites(1)
            .racks_per_site(2)
            .nodes_per_rack(4)
            .build()
    }

    fn net() -> NetworkModel {
        // 100 MB/s NICs, no latency, to make arithmetic easy.
        NetworkModel {
            nic_bw: 100.0e6,
            rack_uplink_bw: 1000.0e6,
            backbone_bw: 1000.0e6,
            loopback_bw: 10_000.0e6,
            disk_bw: 60.0e6,
            local_latency: SimDuration::ZERO,
            rack_latency: SimDuration::ZERO,
            site_latency: SimDuration::ZERO,
            wan_latency: SimDuration::ZERO,
        }
    }

    #[test]
    fn single_flow_takes_bottleneck_time() {
        let t = topo();
        let mut sim = FlowSimulator::new(&t, net());
        // 100 MB over a 100 MB/s NIC: one second.
        let p =
            ClientProcess::new(t.node(0)).then(Step::transfer(t.node(0), t.node(1), 100_000_000));
        let report = sim.run(vec![p]);
        let d = report.processes[0].duration().as_secs_f64();
        assert!((d - 1.0).abs() < 0.01, "expected ~1s, got {d}");
        assert_eq!(report.total_bytes(), 100_000_000);
    }

    #[test]
    fn two_flows_sharing_one_destination_halve_throughput() {
        let t = topo();
        let mut sim = FlowSimulator::new(&t, net());
        // Two sources push 100 MB each to the same destination: its downlink
        // (100 MB/s) is the bottleneck, so the makespan is ~2 s.
        let p1 =
            ClientProcess::new(t.node(0)).then(Step::transfer(t.node(0), t.node(2), 100_000_000));
        let p2 =
            ClientProcess::new(t.node(1)).then(Step::transfer(t.node(1), t.node(2), 100_000_000));
        let report = sim.run(vec![p1, p2]);
        let m = report.makespan().as_secs_f64();
        assert!((m - 2.0).abs() < 0.05, "expected ~2s, got {m}");
    }

    #[test]
    fn two_flows_to_distinct_destinations_run_at_full_rate() {
        let t = topo();
        let mut sim = FlowSimulator::new(&t, net());
        let p1 =
            ClientProcess::new(t.node(0)).then(Step::transfer(t.node(0), t.node(2), 100_000_000));
        let p2 =
            ClientProcess::new(t.node(1)).then(Step::transfer(t.node(1), t.node(3), 100_000_000));
        let report = sim.run(vec![p1, p2]);
        let m = report.makespan().as_secs_f64();
        assert!((m - 1.0).abs() < 0.05, "expected ~1s, got {m}");
        // Aggregate throughput is ~200 MB/s.
        assert!(report.aggregate_throughput() > 150.0e6);
    }

    #[test]
    fn sequential_steps_accumulate() {
        let t = topo();
        let mut sim = FlowSimulator::new(&t, net());
        let p = ClientProcess::new(t.node(0))
            .then(Step::transfer(t.node(0), t.node(1), 50_000_000))
            .then(Step::transfer(t.node(0), t.node(2), 50_000_000));
        let report = sim.run(vec![p]);
        let d = report.processes[0].duration().as_secs_f64();
        assert!((d - 1.0).abs() < 0.02, "expected ~1s total, got {d}");
        assert_eq!(report.processes[0].bytes, 100_000_000);
    }

    #[test]
    fn parallel_replica_writes_bottleneck_on_source_uplink() {
        let t = topo();
        let mut sim = FlowSimulator::new(&t, net());
        // One client pushes the same 100 MB to two replicas in parallel:
        // 200 MB must leave its single 100 MB/s uplink, so ~2 s.
        let p = ClientProcess::new(t.node(0)).then(Step::parallel(vec![
            Flow::new(t.node(0), t.node(1), 100_000_000),
            Flow::new(t.node(0), t.node(2), 100_000_000),
        ]));
        let report = sim.run(vec![p]);
        let d = report.processes[0].duration().as_secs_f64();
        assert!((d - 2.0).abs() < 0.05, "expected ~2s, got {d}");
    }

    #[test]
    fn compute_steps_take_their_time() {
        let t = topo();
        let mut sim = FlowSimulator::new(&t, net());
        let p = ClientProcess::new(t.node(0))
            .then(Step::compute(SimDuration::from_secs(3)))
            .then(Step::transfer(t.node(0), t.node(1), 100_000_000));
        let report = sim.run(vec![p]);
        let d = report.processes[0].duration().as_secs_f64();
        assert!((d - 4.0).abs() < 0.05, "expected ~4s, got {d}");
    }

    #[test]
    fn compute_overlaps_flows_within_a_step() {
        let t = topo();
        let mut sim = FlowSimulator::new(&t, net());
        // 1 s of network + 1 s of compute in the same step: they overlap, so
        // the step takes ~1 s, not 2.
        let p = ClientProcess::new(t.node(0)).then(
            Step::transfer(t.node(0), t.node(1), 100_000_000)
                .with_compute(SimDuration::from_secs(1)),
        );
        let report = sim.run(vec![p]);
        let d = report.processes[0].duration().as_secs_f64();
        assert!((d - 1.0).abs() < 0.05, "expected ~1s, got {d}");
    }

    #[test]
    fn delayed_start_is_respected() {
        let t = topo();
        let mut sim = FlowSimulator::new(&t, net());
        let p = ClientProcess::new(t.node(0))
            .starting_at(SimTime::from_secs(5))
            .then(Step::transfer(t.node(0), t.node(1), 100_000_000));
        let report = sim.run(vec![p]);
        assert_eq!(report.processes[0].started, SimTime::from_secs(5));
        let finished = report.processes[0].finished.as_secs_f64();
        assert!(
            (finished - 6.0).abs() < 0.05,
            "expected finish ~6s, got {finished}"
        );
    }

    #[test]
    fn empty_processes_finish_immediately() {
        let t = topo();
        let mut sim = FlowSimulator::new(&t, net());
        let report = sim.run(vec![ClientProcess::new(t.node(0)).labelled("noop")]);
        assert_eq!(report.processes[0].finished, SimTime::ZERO);
        assert_eq!(report.processes[0].label, "noop");
        assert_eq!(report.aggregate_throughput(), 0.0);
    }

    #[test]
    fn zero_byte_transfers_complete() {
        let t = topo();
        let mut sim = FlowSimulator::new(&t, net());
        let p = ClientProcess::new(t.node(0)).then(Step::transfer(t.node(0), t.node(1), 0));
        let report = sim.run(vec![p]);
        assert_eq!(report.processes[0].bytes, 0);
    }

    #[test]
    fn latency_is_added_to_small_transfers() {
        let t = topo();
        let mut latency_net = net();
        latency_net.rack_latency = SimDuration::from_millis(100);
        let mut sim = FlowSimulator::new(&t, latency_net);
        // A tiny transfer is dominated by the 100 ms latency.
        let p = ClientProcess::new(t.node(0)).then(Step::transfer(t.node(0), t.node(1), 1000));
        let report = sim.run(vec![p]);
        let d = report.processes[0].duration().as_secs_f64();
        assert!(d >= 0.1, "expected at least 100ms, got {d}");
        assert!(d < 0.2, "expected roughly 100ms, got {d}");
    }

    #[test]
    fn mean_client_throughput_matches_single_client() {
        let t = topo();
        let mut sim = FlowSimulator::new(&t, net());
        let p =
            ClientProcess::new(t.node(0)).then(Step::transfer(t.node(0), t.node(1), 100_000_000));
        let report = sim.run(vec![p]);
        let thr = report.mean_client_throughput();
        assert!(
            (thr - 100.0e6).abs() / 100.0e6 < 0.05,
            "expected ~100 MB/s, got {thr}"
        );
    }

    #[test]
    fn many_clients_hitting_one_server_scale_down() {
        let t = ClusterTopology::flat(20);
        let mut sim = FlowSimulator::new(&t, net());
        // 10 clients all read from node 0: aggregate limited by node 0's
        // 100 MB/s uplink.
        let procs: Vec<ClientProcess> = (1..=10)
            .map(|i| {
                ClientProcess::new(t.node(i)).then(Step::transfer(t.node(0), t.node(i), 10_000_000))
            })
            .collect();
        let report = sim.run(procs);
        let agg = report.aggregate_throughput();
        assert!(
            agg <= 105.0e6,
            "aggregate {agg} should not exceed the server uplink"
        );
        assert!(
            agg >= 80.0e6,
            "aggregate {agg} should approach the server uplink"
        );
    }
}

#[cfg(test)]
mod disk_tests {
    use super::*;
    use crate::netmodel::NetworkModel;
    use crate::topology::ClusterTopology;

    fn net_with_slow_disk() -> NetworkModel {
        NetworkModel {
            nic_bw: 100.0e6,
            rack_uplink_bw: 1000.0e6,
            backbone_bw: 1000.0e6,
            loopback_bw: 10_000.0e6,
            disk_bw: 50.0e6,
            local_latency: SimDuration::ZERO,
            rack_latency: SimDuration::ZERO,
            site_latency: SimDuration::ZERO,
            wan_latency: SimDuration::ZERO,
        }
    }

    #[test]
    fn durable_write_is_limited_by_the_destination_disk() {
        let t = ClusterTopology::flat(4);
        let mut sim = FlowSimulator::new(&t, net_with_slow_disk());
        // 100 MB to storage: the 50 MB/s disk (not the 100 MB/s NIC) bounds it.
        let p = ClientProcess::new(t.node(0)).then(Step::parallel(vec![Flow::write_to_storage(
            t.node(0),
            t.node(1),
            100_000_000,
        )]));
        let report = sim.run(vec![p]);
        let d = report.processes[0].duration().as_secs_f64();
        assert!((d - 2.0).abs() < 0.05, "expected ~2s (disk-bound), got {d}");
    }

    #[test]
    fn local_durable_write_still_pays_the_disk() {
        let t = ClusterTopology::flat(2);
        let mut sim = FlowSimulator::new(&t, net_with_slow_disk());
        // Writing locally avoids the network but not the disk.
        let p = ClientProcess::new(t.node(0)).then(Step::parallel(vec![Flow::write_to_storage(
            t.node(0),
            t.node(0),
            100_000_000,
        )]));
        let report = sim.run(vec![p]);
        let d = report.processes[0].duration().as_secs_f64();
        assert!((d - 2.0).abs() < 0.05, "expected ~2s (disk-bound), got {d}");
    }

    #[test]
    fn striped_writes_over_many_disks_are_nic_bound() {
        let t = ClusterTopology::flat(8);
        let mut sim = FlowSimulator::new(&t, net_with_slow_disk());
        // 100 MB striped over 4 storage nodes: each disk gets 25 MB, so the
        // client's 100 MB/s NIC is the bottleneck (~1 s), not any disk.
        let flows = (1..=4)
            .map(|i| Flow::write_to_storage(t.node(0), t.node(i), 25_000_000))
            .collect();
        let p = ClientProcess::new(t.node(0)).then(Step::parallel(flows));
        let report = sim.run(vec![p]);
        let d = report.processes[0].duration().as_secs_f64();
        assert!((d - 1.0).abs() < 0.05, "expected ~1s (NIC-bound), got {d}");
    }

    #[test]
    fn two_readers_of_one_storage_node_share_its_disk() {
        let t = ClusterTopology::flat(4);
        let mut sim = FlowSimulator::new(&t, net_with_slow_disk());
        let mk =
            |reader: u32| {
                ClientProcess::new(t.node(reader)).then(Step::parallel(vec![
                    Flow::read_from_storage(t.node(0), t.node(reader), 50_000_000),
                ]))
            };
        let report = sim.run(vec![mk(1), mk(2)]);
        // 100 MB total from one 50 MB/s disk: ~2 s makespan.
        let m = report.makespan().as_secs_f64();
        assert!((m - 2.0).abs() < 0.1, "expected ~2s, got {m}");
    }
}
