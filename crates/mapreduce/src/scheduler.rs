//! Locality-aware task scheduling and the straggler-speculation policy.
//!
//! "One of the optimization techniques the MapReduce framework employs, is to
//! ship the computation to nodes that store the input data; the goal is to
//! minimize data transfers between nodes. For this reason, the storage layer
//! must be able to provide the information about the location of the data"
//! (paper §II-B). The jobtracker uses the functions below to hand each free
//! map slot the *closest* pending split: one whose data lives on the
//! tasktracker's own node if possible, else in its rack, else anywhere.
//!
//! The second half of this module is Hadoop's other latency defense:
//! **speculative execution**. A [`SpeculationPolicy`] decides, from a running
//! attempt's elapsed time and reported progress (an [`AttemptView`]) and the
//! runtimes of its completed peer tasks (a [`RuntimeHistory`], kept
//! incrementally sorted so the per-poll consult is O(1), not a fresh sort),
//! whether an idle slot should launch a duplicate attempt of that task. The
//! default [`SlowestFactorPolicy`] clones a task once it has run longer than
//! `slowest_factor ×` the median of its completed peers (with an absolute
//! floor, so short jobs don't speculate on noise); [`LatePolicy`] instead
//! estimates each attempt's *remaining* time from its progress fraction and
//! clones the task that will finish last. All times come from the
//! jobtracker's injected [`simcluster::clock::Clock`], so the policies are
//! deterministic under a [`simcluster::clock::SimClock`].

use crate::split::InputSplit;
use simcluster::topology::ClusterTopology;
use simcluster::NodeId;
use std::time::Duration;

/// How close a task's data is to the node that will execute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Locality {
    /// The data (one of its replicas) is on the executing node itself.
    DataLocal,
    /// The data is in the same rack as the executing node.
    RackLocal,
    /// The data is somewhere else in the cluster (or the split has no
    /// location information, e.g. synthetic splits).
    Remote,
}

/// Counters of how many map tasks ran at each locality level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalityCounters {
    /// Tasks whose data was on the executing node.
    pub data_local: usize,
    /// Tasks whose data was in the executing node's rack.
    pub rack_local: usize,
    /// Tasks that had to read across racks (or had no location info).
    pub remote: usize,
}

impl LocalityCounters {
    /// Record one task execution at the given locality.
    pub fn record(&mut self, locality: Locality) {
        match locality {
            Locality::DataLocal => self.data_local += 1,
            Locality::RackLocal => self.rack_local += 1,
            Locality::Remote => self.remote += 1,
        }
    }

    /// Total tasks recorded.
    pub fn total(&self) -> usize {
        self.data_local + self.rack_local + self.remote
    }
}

/// Classify how close a split's data is to `node`.
pub fn classify(topology: &ClusterTopology, node: NodeId, split: &InputSplit) -> Locality {
    if split.preferred_nodes.is_empty() {
        return Locality::Remote;
    }
    if split.preferred_nodes.contains(&node) {
        return Locality::DataLocal;
    }
    let rack = topology.rack_of(node);
    if split
        .preferred_nodes
        .iter()
        .any(|n| topology.rack_of(*n) == rack)
    {
        Locality::RackLocal
    } else {
        Locality::Remote
    }
}

/// Pick the best pending split for a tasktracker on `node`: data-local first,
/// then rack-local, then anything. Returns the position *within `pending`* of
/// the chosen entry and its locality class, or `None` when `pending` is empty.
pub fn pick_map_task(
    topology: &ClusterTopology,
    node: NodeId,
    pending: &[usize],
    splits: &[InputSplit],
) -> Option<(usize, Locality)> {
    if pending.is_empty() {
        return None;
    }
    let mut best: Option<(usize, Locality)> = None;
    for (pos, &split_idx) in pending.iter().enumerate() {
        let locality = classify(topology, node, &splits[split_idx]);
        match best {
            None => best = Some((pos, locality)),
            Some((_, current)) if locality < current => best = Some((pos, locality)),
            _ => {}
        }
        if locality == Locality::DataLocal {
            break; // cannot do better
        }
    }
    best
}

/// What a speculation policy sees about one running attempt: how long it has
/// been executing and how far through its input it claims to be. Attempts
/// report progress fractions at record-count milestones; `0.0` means "no
/// report yet" (the LATE estimator treats it as barely started).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptView {
    /// Elapsed execution time of the attempt (clock now − claim time).
    pub runtime: Duration,
    /// Reported progress fraction in `[0, 1]`.
    pub progress: f64,
}

/// Incrementally maintained runtime statistics of a phase's committed tasks.
///
/// The speculation policy is consulted from idle worker slots polling under
/// the phase lock every millisecond; the old implementation cloned and
/// re-sorted the full runtime vector on every consult, an O(n log n) tax per
/// poll that a 500-task phase pays thousands of times. This keeps the history
/// sorted as runtimes arrive (binary-search insert, O(n) worst-case memmove
/// but amortised far below a full sort), making `median` O(1).
#[derive(Debug, Clone, Default)]
pub struct RuntimeHistory {
    sorted: Vec<Duration>,
}

impl RuntimeHistory {
    /// An empty history.
    pub fn new() -> Self {
        RuntimeHistory::default()
    }

    /// Record one committed task's runtime, keeping the history sorted.
    pub fn record(&mut self, runtime: Duration) {
        let at = self.sorted.partition_point(|r| *r <= runtime);
        self.sorted.insert(at, runtime);
    }

    /// Number of recorded runtimes.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Is the history empty?
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Median runtime in O(1) ([`Duration::ZERO`] when empty); even counts
    /// average the two middle values, matching Hadoop's estimator.
    pub fn median(&self) -> Duration {
        let n = self.sorted.len();
        if n == 0 {
            return Duration::ZERO;
        }
        let mid = n / 2;
        if n % 2 == 1 {
            self.sorted[mid]
        } else {
            (self.sorted[mid - 1] + self.sorted[mid]) / 2
        }
    }

    /// The runtimes, sorted ascending.
    pub fn sorted(&self) -> &[Duration] {
        &self.sorted
    }
}

/// Decides whether a running task deserves a speculative duplicate attempt.
///
/// The jobtracker consults the policy from *idle* worker slots (so "spare
/// slots exist" holds by construction): `attempt` describes the task's sole
/// running attempt, `history` the runtimes of the tasks of the same phase
/// that already committed.
pub trait SpeculationPolicy: Send + Sync {
    /// Should an idle slot clone this task now?
    fn should_speculate(&self, attempt: AttemptView, history: &RuntimeHistory) -> bool;

    /// Ranking score used to choose *which* structural candidate to clone
    /// when several qualify: the candidate with the highest urgency is
    /// offered first. The default ranks by elapsed runtime (Hadoop's
    /// longest-running-first); LATE overrides it with the estimated
    /// remaining time.
    fn urgency(&self, attempt: AttemptView) -> Duration {
        attempt.runtime
    }
}

/// Median of a set of task runtimes ([`Duration::ZERO`] when empty); even
/// counts average the two middle values, matching Hadoop's estimator.
pub fn median_runtime(runtimes: &[Duration]) -> Duration {
    if runtimes.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = runtimes.to_vec();
    sorted.sort();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    }
}

/// The default speculation policy: clone a task once its runtime exceeds
/// `slowest_factor ×` the median runtime of its completed peers, with an
/// absolute `min_runtime` floor, and only after `min_completed` peers have
/// finished (no peers, no baseline — Hadoop's "wait for enough history").
#[derive(Debug, Clone, Copy)]
pub struct SlowestFactorPolicy {
    /// How many times slower than the median a task must be.
    pub slowest_factor: f64,
    /// Never speculate a task that has run for less than this.
    pub min_runtime: Duration,
    /// Completed peer tasks required before any speculation.
    pub min_completed: usize,
}

impl Default for SlowestFactorPolicy {
    fn default() -> Self {
        SlowestFactorPolicy {
            slowest_factor: 1.5,
            min_runtime: Duration::from_secs(1),
            min_completed: 1,
        }
    }
}

impl SpeculationPolicy for SlowestFactorPolicy {
    fn should_speculate(&self, attempt: AttemptView, history: &RuntimeHistory) -> bool {
        if history.len() < self.min_completed {
            return false;
        }
        let threshold = history
            .median()
            .mul_f64(self.slowest_factor)
            .max(self.min_runtime);
        attempt.runtime > threshold
    }
}

/// Floor on the progress fraction LATE divides by: an attempt that has
/// reported no progress at all still gets a finite (but very large) remaining
/// time estimate instead of a division blow-up.
const LATE_MIN_PROGRESS: f64 = 0.01;

/// A LATE-style speculation policy (Zaharia et al., *Improving MapReduce
/// Performance in Heterogeneous Environments*): instead of comparing elapsed
/// runtime against the median peer runtime, estimate each attempt's
/// **remaining** time from its reported progress fraction — assuming the
/// observed progress rate holds, `remaining = runtime × (1 − p) / p` — and
/// clone the task whose estimated remaining time is longest, once that
/// estimate exceeds `late_factor ×` the median runtime of its committed
/// peers. A half-done slow task and a barely-started medium task rank by how
/// much longer they will *take*, not how long they have already run, which
/// is what actually bounds job completion time.
#[derive(Debug, Clone, Copy)]
pub struct LatePolicy {
    /// How many medians of estimated-remaining-time trigger a clone.
    pub late_factor: f64,
    /// Never speculate an attempt that has run for less than this (progress
    /// rates measured over tiny runtimes are noise).
    pub min_runtime: Duration,
    /// Completed peer tasks required before any speculation.
    pub min_completed: usize,
}

impl Default for LatePolicy {
    fn default() -> Self {
        LatePolicy {
            late_factor: 1.0,
            min_runtime: Duration::from_secs(1),
            min_completed: 1,
        }
    }
}

impl LatePolicy {
    /// Estimated time left for an attempt, from its progress rate so far.
    pub fn remaining(attempt: AttemptView) -> Duration {
        let p = attempt.progress.clamp(0.0, 1.0).max(LATE_MIN_PROGRESS);
        attempt.runtime.mul_f64((1.0 - p) / p)
    }
}

impl SpeculationPolicy for LatePolicy {
    fn should_speculate(&self, attempt: AttemptView, history: &RuntimeHistory) -> bool {
        if history.len() < self.min_completed || attempt.runtime < self.min_runtime {
            return false;
        }
        let threshold = history.median().mul_f64(self.late_factor);
        Self::remaining(attempt) > threshold
    }

    fn urgency(&self, attempt: AttemptView) -> Duration {
        Self::remaining(attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::SplitSource;

    fn split(id: usize, nodes: Vec<NodeId>) -> InputSplit {
        InputSplit {
            id,
            source: SplitSource::File {
                path: "/f".into(),
                offset: 0,
                len: 1,
            },
            preferred_nodes: nodes,
        }
    }

    fn topo() -> ClusterTopology {
        // 2 racks of 3 nodes: rack 0 = nodes 0..3, rack 1 = nodes 3..6.
        ClusterTopology::builder()
            .sites(1)
            .racks_per_site(2)
            .nodes_per_rack(3)
            .build()
    }

    #[test]
    fn classification_levels() {
        let t = topo();
        let s_local = split(0, vec![NodeId(1)]);
        let s_rack = split(1, vec![NodeId(2)]);
        let s_remote = split(2, vec![NodeId(5)]);
        let s_unknown = split(3, vec![]);
        assert_eq!(classify(&t, NodeId(1), &s_local), Locality::DataLocal);
        assert_eq!(classify(&t, NodeId(1), &s_rack), Locality::RackLocal);
        assert_eq!(classify(&t, NodeId(1), &s_remote), Locality::Remote);
        assert_eq!(classify(&t, NodeId(1), &s_unknown), Locality::Remote);
        // Ordering backs the scheduler's preference.
        assert!(Locality::DataLocal < Locality::RackLocal);
        assert!(Locality::RackLocal < Locality::Remote);
    }

    #[test]
    fn picker_prefers_data_local_then_rack_local() {
        let t = topo();
        let splits = vec![
            split(0, vec![NodeId(5)]), // remote for node 0
            split(1, vec![NodeId(2)]), // rack-local for node 0
            split(2, vec![NodeId(0)]), // data-local for node 0
        ];
        let pending = vec![0, 1, 2];
        let (pos, loc) = pick_map_task(&t, NodeId(0), &pending, &splits).unwrap();
        assert_eq!(pending[pos], 2);
        assert_eq!(loc, Locality::DataLocal);

        // Without the data-local option, the rack-local one wins.
        let pending = vec![0, 1];
        let (pos, loc) = pick_map_task(&t, NodeId(0), &pending, &splits).unwrap();
        assert_eq!(pending[pos], 1);
        assert_eq!(loc, Locality::RackLocal);

        // Only the remote split left.
        let pending = vec![0];
        let (pos, loc) = pick_map_task(&t, NodeId(0), &pending, &splits).unwrap();
        assert_eq!(pending[pos], 0);
        assert_eq!(loc, Locality::Remote);

        assert!(pick_map_task(&t, NodeId(0), &[], &splits).is_none());
    }

    /// An attempt view with no progress report (the pre-LATE policies only
    /// look at the runtime).
    fn ran(runtime: Duration) -> AttemptView {
        AttemptView {
            runtime,
            progress: 0.0,
        }
    }

    fn history(runtimes: &[Duration]) -> RuntimeHistory {
        let mut h = RuntimeHistory::new();
        for r in runtimes {
            h.record(*r);
        }
        h
    }

    #[test]
    fn median_runtime_handles_odd_even_and_empty() {
        let s = Duration::from_secs;
        assert_eq!(median_runtime(&[]), Duration::ZERO);
        assert_eq!(median_runtime(&[s(4)]), s(4));
        assert_eq!(median_runtime(&[s(9), s(1), s(5)]), s(5));
        assert_eq!(median_runtime(&[s(8), s(2), s(4), s(6)]), s(5));
    }

    #[test]
    fn runtime_history_maintains_a_sorted_incremental_median() {
        let s = Duration::from_secs;
        let mut h = RuntimeHistory::new();
        assert!(h.is_empty());
        assert_eq!(h.median(), Duration::ZERO);
        // Insert out of order; the history must agree with the full-sort
        // reference at every step.
        let mut seen = Vec::new();
        for r in [s(9), s(1), s(5), s(5), s(2), s(40), s(3)] {
            h.record(r);
            seen.push(r);
            assert_eq!(h.median(), median_runtime(&seen));
            assert!(h.sorted().windows(2).all(|w| w[0] <= w[1]));
        }
        assert_eq!(h.len(), 7);
    }

    #[test]
    fn slowest_factor_policy_gates_on_history_floor_and_factor() {
        let s = Duration::from_secs;
        let policy = SlowestFactorPolicy {
            slowest_factor: 2.0,
            min_runtime: s(3),
            min_completed: 2,
        };
        // Not enough completed peers: never speculate, however slow.
        assert!(!policy.should_speculate(ran(s(1000)), &history(&[s(1)])));
        // Enough history, but under the absolute floor.
        assert!(!policy.should_speculate(ran(s(3)), &history(&[s(1), s(1)])));
        // Over the floor and over factor x median.
        assert!(policy.should_speculate(ran(s(4)), &history(&[s(1), s(1)])));
        // Factor dominates once the median is large: 2 x 10s = 20s.
        assert!(!policy.should_speculate(ran(s(20)), &history(&[s(10), s(10)])));
        assert!(policy.should_speculate(ran(s(21)), &history(&[s(10), s(10)])));
        // The default ranking is longest-elapsed-first.
        assert!(policy.urgency(ran(s(21))) > policy.urgency(ran(s(20))));
    }

    #[test]
    fn default_policy_waits_for_one_peer_and_one_second() {
        let policy = SlowestFactorPolicy::default();
        assert!(!policy.should_speculate(ran(Duration::from_secs(900)), &history(&[])));
        assert!(policy.should_speculate(
            ran(Duration::from_secs(2)),
            &history(&[Duration::from_millis(10)])
        ));
    }

    #[test]
    fn late_policy_estimates_remaining_time_from_progress() {
        let s = Duration::from_secs;
        let at = |runtime: Duration, progress: f64| AttemptView { runtime, progress };
        let policy = LatePolicy::default();
        let h = history(&[s(10), s(10)]); // median 10s

        // 90% done after 20s: ~2.2s left, far under the 10s median — a
        // runtime-vs-median policy would have cloned this long ago.
        assert!(!policy.should_speculate(at(s(20), 0.9), &h));
        // 10% done after 5s: 45s left > 10s median — LATE clones it even
        // though its elapsed runtime is *below* the median.
        assert!(policy.should_speculate(at(s(5), 0.1), &h));
        // No progress report at all: remaining is capped, not infinite, and
        // still well past the threshold.
        assert!(policy.should_speculate(at(s(2), 0.0), &h));
        // Gates: runtime floor and history floor.
        assert!(!policy.should_speculate(at(Duration::from_millis(100), 0.1), &h));
        assert!(!policy.should_speculate(at(s(5), 0.1), &history(&[])));

        // Urgency ranks by remaining time, not elapsed: the barely-started
        // task outranks the nearly-done one that has run 4x longer.
        assert!(policy.urgency(at(s(5), 0.1)) > policy.urgency(at(s(20), 0.9)));
        // remaining() itself: 10s at half progress -> 10s left.
        assert_eq!(LatePolicy::remaining(at(s(10), 0.5)), s(10));
    }

    #[test]
    fn counters_accumulate() {
        let mut c = LocalityCounters::default();
        c.record(Locality::DataLocal);
        c.record(Locality::DataLocal);
        c.record(Locality::RackLocal);
        c.record(Locality::Remote);
        assert_eq!(c.data_local, 2);
        assert_eq!(c.rack_local, 1);
        assert_eq!(c.remote, 1);
        assert_eq!(c.total(), 4);
    }
}
