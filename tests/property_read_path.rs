//! Read-path correctness: the frontier-batched BFS `lookup_range` must be
//! byte-identical to the retained node-at-a-time reference walk on arbitrary
//! trees, the immutable-node metadata cache must never change what a reader
//! sees (only how fast it sees it), and per-page replica failover must
//! survive the parallel page fetch pool.

use blobseer::metadata::segment_tree::{build_version, lookup_range, lookup_range_walk, PrevTree};
use blobseer::metadata::store::MetadataStore;
use blobseer::types::next_power_of_two;
use blobseer::{BlobId, BlobSeer, BlobSeerConfig, BlobSeerError, ProviderId, Version};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Build the tree version sequence described by `writes` (one inner vec of
/// `(page, provider)` pairs per version) and return each version's root and
/// span. Page indices are taken modulo a growing span so trees both overwrite
/// and grow; duplicate pages within one write collapse (last provider wins).
fn build_tree_sequence(
    store: &MetadataStore,
    blob: BlobId,
    writes: &[Vec<(u64, u32)>],
) -> Vec<(blobseer::metadata::NodeKey, u64)> {
    let mut prev = PrevTree::empty();
    let mut roots = Vec::new();
    for (v, write) in writes.iter().enumerate() {
        let version = Version(v as u64 + 1);
        // Grow the span with the version index so early versions are small
        // trees and later ones force wrapper extension of the previous root.
        let span = next_power_of_two(prev.span.max(v as u64 + 1));
        let mut pages: BTreeMap<u64, Vec<ProviderId>> = BTreeMap::new();
        for &(page, provider) in write {
            pages.insert(page % span, vec![ProviderId(provider)]);
        }
        if pages.is_empty() {
            pages.insert(0, vec![ProviderId(0)]);
        }
        let root = build_version(store, blob, version, prev, span, &pages).unwrap();
        roots.push((root, span));
        prev = PrevTree {
            root: Some(root),
            span,
        };
    }
    roots
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The batched BFS descent and the node-at-a-time walk return identical
    /// `PageMeta` vectors for every version of a random tree and every query
    /// range, holes and beyond-span pages included — with and without the
    /// client-side cache in front of the DHT.
    #[test]
    fn batched_lookup_is_byte_identical_to_the_reference_walk(
        writes in prop::collection::vec(
            prop::collection::vec((0u64..16, 0u32..8), 1..6),
            1..8,
        ),
        queries in prop::collection::vec((0u64..20, 0u64..20), 1..8),
    ) {
        let cached = MetadataStore::new(3, 2).with_node_cache(256);
        let plain = MetadataStore::new(3, 2);
        let roots_cached = build_tree_sequence(&cached, BlobId(1), &writes);
        let roots_plain = build_tree_sequence(&plain, BlobId(1), &writes);

        for ((root_c, span_c), (root_p, span_p)) in roots_cached.iter().zip(&roots_plain) {
            prop_assert_eq!(span_c, span_p);
            for &(a, b) in &queries {
                let (first, last) = (a.min(b), a.max(b));
                let walk = lookup_range_walk(&plain, Some(*root_p), *span_p, first, last).unwrap();
                let bfs_plain = lookup_range(&plain, Some(*root_p), *span_p, first, last).unwrap();
                let bfs_cached = lookup_range(&cached, Some(*root_c), *span_c, first, last).unwrap();
                prop_assert_eq!(&walk, &bfs_plain);
                prop_assert_eq!(&walk, &bfs_cached);
                prop_assert_eq!(walk.len() as u64, last - first + 1);
            }
        }
        // Repeating the cached lookups hits the cache, never the DHT again,
        // and still agrees with the walk.
        let dht_reads_before = cached.stats().dht_read_round_trips;
        for ((root_c, span_c), (root_p, span_p)) in roots_cached.iter().zip(&roots_plain) {
            for &(a, b) in &queries {
                let (first, last) = (a.min(b), a.max(b));
                let walk = lookup_range_walk(&plain, Some(*root_p), *span_p, first, last).unwrap();
                let again = lookup_range(&cached, Some(*root_c), *span_c, first, last).unwrap();
                prop_assert_eq!(walk, again);
            }
        }
        prop_assert_eq!(cached.stats().dht_read_round_trips, dht_reads_before);
    }
}

/// Reading an old version after many later overwrites returns the old bytes
/// (immutable snapshots) and is served from the metadata cache.
#[test]
fn old_versions_read_identically_through_the_cache() {
    let sys = BlobSeer::new(
        BlobSeerConfig::for_tests()
            .with_providers(6)
            .with_page_size(32),
    );
    let client = sys.client();
    let blob = client.create(Some(32)).unwrap();
    let original: Vec<u8> = (0..32 * 8).map(|i| (i % 247) as u8).collect();
    let v1 = client.write(blob, 0, &original).unwrap();

    // Ten generations of partial overwrites on top.
    for g in 0..10u64 {
        let patch = vec![0xF0 | g as u8; 64];
        client.write(blob, (g % 4) * 64, &patch).unwrap();
    }

    let before = sys.metadata().stats();
    let got = client.read(blob, v1, 0, original.len() as u64).unwrap();
    assert_eq!(got, original, "v1 must read exactly as written");
    let after = sys.metadata().stats();
    assert!(
        after.cache_hits > before.cache_hits,
        "the v1 tree descent should be answered from the cache"
    );
    assert_eq!(
        after.dht_read_round_trips, before.dht_read_round_trips,
        "a fully cached descent performs no DHT reads"
    );

    // The same read with a cache-disabled deployment (the ablation config)
    // agrees byte for byte, so the cache changes cost, not content.
    let sys2 = BlobSeer::new(
        BlobSeerConfig::for_tests()
            .with_providers(6)
            .with_page_size(32)
            .with_metadata_cache(false),
    );
    let client2 = sys2.client();
    let blob2 = client2.create(Some(32)).unwrap();
    let v1b = client2.write(blob2, 0, &original).unwrap();
    for g in 0..10u64 {
        let patch = vec![0xF0 | g as u8; 64];
        client2.write(blob2, (g % 4) * 64, &patch).unwrap();
    }
    assert_eq!(
        client2.read(blob2, v1b, 0, original.len() as u64).unwrap(),
        got
    );
    assert_eq!(sys2.metadata().stats().cache_hits, 0);
}

/// Killing the primary replica of every page must not break a multi-page
/// read fanned out over the parallel fetch pool: failover happens per page,
/// inside each worker.
#[test]
fn parallel_page_fetch_fails_over_dead_replicas() {
    let sys = BlobSeer::new(
        BlobSeerConfig::for_tests()
            .with_providers(8)
            .with_page_replication(2)
            .with_io_parallelism(6)
            .with_page_size(64),
    );
    let client = sys.client();
    let blob = client.create(Some(64)).unwrap();
    let data: Vec<u8> = (0..64 * 16).map(|i| (i * 13 % 251) as u8).collect();
    let v = client.write(blob, 0, &data).unwrap();

    // Kill the preferred replica of every page.
    for loc in client.locate(blob, v, 0, data.len() as u64).unwrap() {
        sys.provider_manager().kill(loc.providers[0]);
    }
    assert_eq!(
        client.read(blob, v, 0, data.len() as u64).unwrap(),
        data,
        "parallel fetch must fail over to surviving replicas"
    );

    // Kill everything: the pooled read surfaces a clean per-page error.
    for p in sys.provider_manager().providers() {
        p.kill();
    }
    assert!(matches!(
        client.read(blob, v, 0, data.len() as u64),
        Err(BlobSeerError::PageUnavailable { .. })
    ));
}
