//! The jobtracker: job orchestration over the tasktrackers.
//!
//! The jobtracker is the "single master" of the Hadoop architecture the paper
//! describes (§II-A): it splits the input, hands map tasks to tasktrackers
//! (preferring trackers whose node holds the split's data), re-executes
//! failed tasks, schedules the reduce tasks and reports job-level counters.
//! Tasktracker slots execute as scoped tasks on the shared `miniexec` worker
//! pool — concurrent access to the storage layer is genuinely concurrent,
//! but bounded by the pool width rather than by `trackers x slots` dedicated
//! threads.
//!
//! ## Multi-tenant job scheduling
//!
//! The jobtracker runs many jobs at once. [`JobTracker::submit`] enqueues a
//! job and returns a [`JobHandle`]; [`JobTracker::run`] is the
//! submit-and-wait shim. Admission is controlled per tenant by
//! [`TenantQuota`]s (queue depth, running jobs, namespace/storage budgets
//! checked against the usage ledger at submit), and the order queued jobs
//! activate in is the configured [`JobScheduler`]'s choice. Once running,
//! every job's slot loops compete for one shared pool of per-node map and
//! reduce *slot leases*: before claiming work, a loop publishes its job's
//! current demand and asks the scheduler for a grant; after each work item
//! the lease goes back to the pool. FIFO, weighted fair-share, and hard-cap
//! capacity policies live in [`crate::jobsched`]. Speculative clones only
//! ever run on leases no job has real demand for, and when the fair
//! scheduler reports a tenant starved of its entitlement while the pool is
//! exhausted, running clones are preempted (aborted mid-task via their
//! progress callback) — duplicate work is sacrificed first, exactly like
//! Hadoop's fair-scheduler preemption.
//!
//! Intermediate data flows through the storage layer ([`crate::shuffle`]):
//! map tasks spill sorted, partition-bucketed files under a per-execution
//! scratch namespace (`<output>/_shuffle-<tag>/`, see
//! [`shuffle::JobScratch`] — scoped so concurrent jobs, or one tenant
//! resubmitting the same config, can never clobber each other's
//! intermediates), and reduce tasks pull their partition's segment from
//! every committed map file with positioned reads — starting as soon as
//! individual map outputs commit, not behind a global map barrier. All task
//! output (spills and `part-*` files alike) goes through the
//! write-to-`_temporary`-then-rename commit protocol, so retried attempts
//! never leave partial or duplicate files. The original collect-everything-
//! in-RAM shuffle survives as [`JobTracker::run_inmem`], the sequential
//! differential-testing oracle.
//!
//! ## Stragglers and speculative execution
//!
//! Per-task bookkeeping is the [`TaskBook`] attempt state machine: a task
//! may have several concurrent attempts (retries, and — when the job
//! configures a [`SpeculationPolicy`](crate::scheduler::SpeculationPolicy) —
//! speculative clones of stragglers, launched by *idle* worker slots onto a
//! different node than the incumbent attempt). Whichever attempt finishes
//! first commits by renaming its `_temporary` scratch into the final path
//! *while holding the phase lock*, so exactly one attempt ever wins; the
//! loser's scratch is deleted and none of its counters (input records,
//! locality, shuffle round trips) are merged into the [`JobResult`] — only
//! the [`SpeculationCounters`] record the waste. All timing goes through an
//! injectable [`Clock`] ([`WallClock`] by default), so straggler scenarios
//! are tested deterministically on a [`simcluster::clock::SimClock`] without
//! wall-clock sleeps.

use crate::error::{MrError, MrResult};
use crate::fs::DistFs;
use crate::job::Job;
use crate::jobsched::{
    FifoScheduler, JobScheduler, JobView, QueuedView, SlotKind, TenantQuota, TenantUsage,
};
use crate::scheduler::{classify, pick_map_task, Locality, LocalityCounters};
use crate::shuffle::{self, JobScratch};
use crate::split::{compute_splits, InputSplit};
use crate::tasktracker::{
    group_by_key, run_map_task, run_map_task_with_progress, run_reduce_task, write_output_file,
    FailureVerdict, MapTaskOutput, SpeculationCounters, TaskAttemptId, TaskBook, TaskTracker,
};
use parking_lot::{Condvar, Mutex};
use simcluster::clock::{Clock, WallClock};
use simcluster::topology::ClusterTopology;
use simcluster::NodeId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;
use wire::{Direction, Transport, MSG_OVERHEAD};

/// Counters of the storage-materialized shuffle, the analogue of Hadoop's
/// spilled-records / shuffle-bytes job counters. All zero for map-only jobs
/// and for [`JobTracker::run_inmem`] (which moves no intermediate bytes
/// through storage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleCounters {
    /// Bytes of spill files written by map tasks (headers included).
    pub spill_bytes: u64,
    /// Intermediate records written to spill files (post-combine).
    pub spill_records: u64,
    /// Records fed into the combiner at spill time (0 without a combiner).
    pub combine_input_records: u64,
    /// Records the combiner emitted.
    pub combine_output_records: u64,
    /// Map-output segments pulled by reduce tasks (one per map x reduce pair
    /// per successful attempt).
    pub segments_fetched: u64,
    /// Non-empty sorted runs fed to the reducers' k-way merges.
    pub merge_runs: u64,
    /// Positioned reads issued by segment fetches (index + payload reads).
    pub shuffle_read_round_trips: u64,
    /// Bytes moved by segment fetches.
    pub shuffle_read_bytes: u64,
    /// Merged runs committed by the spill compactor (0 with compaction off).
    pub compaction_runs: u64,
    /// Map spills folded into merged runs by the compactor.
    pub compaction_merged_spills: u64,
    /// Bytes of merged-run files the compactor wrote.
    pub compaction_bytes: u64,
}

impl ShuffleCounters {
    /// Project the shuffle's data-plane traffic onto the shared
    /// [`wire::CountersSnapshot`] schema used by every other boundary in
    /// the stack: each positioned segment read is one read message whose
    /// request is framing-only and whose response carries the fetched
    /// bytes. Spill and compaction writes are local to the map node and
    /// move nothing over this wire.
    pub fn wire_snapshot(&self) -> wire::CountersSnapshot {
        let sent = self.shuffle_read_round_trips * MSG_OVERHEAD;
        let received = self.shuffle_read_bytes + self.shuffle_read_round_trips * MSG_OVERHEAD;
        wire::CountersSnapshot {
            messages: self.shuffle_read_round_trips,
            read_messages: self.shuffle_read_round_trips,
            write_messages: 0,
            bytes_sent: sent,
            bytes_received: received,
            bytes_on_wire: sent + received,
        }
    }
}

/// Job-level counters and outcome, the analogue of Hadoop's job report.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Name of the job.
    pub job_name: String,
    /// Name of the storage backend the job ran over ("BSFS" / "HDFS").
    pub fs_name: String,
    /// Number of map tasks executed.
    pub map_tasks: usize,
    /// Number of reduce tasks executed.
    pub reduce_tasks: usize,
    /// Map-task locality breakdown (winning attempts only).
    pub locality: LocalityCounters,
    /// Task attempts that failed and were retried.
    pub task_retries: usize,
    /// Input records consumed by the map phase (winning attempts only —
    /// losing speculative attempts re-read the same splits, but their
    /// counters are discarded with their output).
    pub input_records: u64,
    /// Records produced by the reduce phase (or the map phase for map-only
    /// jobs).
    pub output_records: u64,
    /// Bytes read from the storage layer by map tasks.
    pub input_bytes: u64,
    /// Bytes written to the storage layer by output tasks.
    pub output_bytes: u64,
    /// Counters of the storage-materialized shuffle.
    pub shuffle: ShuffleCounters,
    /// Speculative-execution outcome (launches, wins, wasted work), summed
    /// over both phases. All zero when the job sets no speculation policy.
    pub speculation: SpeculationCounters,
    /// Duration of the job on the jobtracker's [`Clock`]: wall-clock time in
    /// production, virtual time under a `SimClock`. Measured from activation
    /// to the commit of the last task — queueing delay behind other jobs is
    /// not included (measure it around [`JobTracker::submit`]).
    pub elapsed: Duration,
    /// Paths of the `part-*` output files.
    pub output_files: Vec<String>,
}

impl JobResult {
    /// Completion time in seconds (the metric the paper reports for the
    /// application experiments).
    pub fn completion_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// The framework master. Cheap to clone: clones share the tasktrackers, the
/// clock, the control wire, and the whole multi-tenant engine (admission
/// queue, slot pool, quotas, ledger), so a clone moved into a driver thread
/// still schedules against the same cluster.
#[derive(Clone)]
pub struct JobTracker {
    topology: ClusterTopology,
    trackers: Vec<TaskTracker>,
    clock: Arc<dyn Clock>,
    control: Option<Arc<ControlWire>>,
    engine: Arc<Engine>,
}

/// The jobtracker <-> tasktracker control channel. When a transport is
/// attached ([`JobTracker::with_transport`]), every task claim and every
/// attempt-outcome report is charged as one small framed exchange between
/// the slot's node and the jobtracker's home node — the heartbeat-carried
/// RPCs of the Hadoop protocol. Control messages carry bookkeeping, not
/// data, so both directions are framing-only.
struct ControlWire {
    transport: Arc<dyn Transport>,
    counters: wire::Counters,
    jt_node: NodeId,
}

impl ControlWire {
    /// A slot asks the jobtracker for work: request out, assignment back.
    fn charge_claim(&self, tracker: NodeId) {
        self.counters
            .record(Direction::Read, MSG_OVERHEAD, MSG_OVERHEAD);
        self.transport.exchange(
            tracker,
            self.jt_node,
            Direction::Read,
            MSG_OVERHEAD,
            MSG_OVERHEAD,
        );
    }

    /// A slot reports an attempt outcome: status out, ack back.
    fn charge_report(&self, tracker: NodeId) {
        self.counters
            .record(Direction::Write, MSG_OVERHEAD, MSG_OVERHEAD);
        self.transport.exchange(
            tracker,
            self.jt_node,
            Direction::Write,
            MSG_OVERHEAD,
            MSG_OVERHEAD,
        );
    }
}

/// Per-job accounting the scheduler arbitrates over: how many slots of each
/// kind the job wants right now, holds, and is burning on speculative
/// clones. Updated lock-free by the job's slot loops; read under the pool
/// lock when building [`JobView`]s.
struct JobAccount {
    seq: u64,
    tenant: String,
    map_demand: AtomicUsize,
    reduce_demand: AtomicUsize,
    map_held: AtomicUsize,
    reduce_held: AtomicUsize,
    map_spec: AtomicUsize,
    reduce_spec: AtomicUsize,
    /// Outstanding preemption requests against this job's speculative
    /// clones; consumed by a clone at its next progress checkpoint.
    preempt: AtomicUsize,
}

impl JobAccount {
    fn new(seq: u64, tenant: &str) -> Self {
        JobAccount {
            seq,
            tenant: tenant.to_string(),
            map_demand: AtomicUsize::new(0),
            reduce_demand: AtomicUsize::new(0),
            map_held: AtomicUsize::new(0),
            reduce_held: AtomicUsize::new(0),
            map_spec: AtomicUsize::new(0),
            reduce_spec: AtomicUsize::new(0),
            preempt: AtomicUsize::new(0),
        }
    }

    fn demand_atomic(&self, kind: SlotKind) -> &AtomicUsize {
        match kind {
            SlotKind::Map => &self.map_demand,
            SlotKind::Reduce => &self.reduce_demand,
        }
    }

    fn held_atomic(&self, kind: SlotKind) -> &AtomicUsize {
        match kind {
            SlotKind::Map => &self.map_held,
            SlotKind::Reduce => &self.reduce_held,
        }
    }

    fn spec_atomic(&self, kind: SlotKind) -> &AtomicUsize {
        match kind {
            SlotKind::Map => &self.map_spec,
            SlotKind::Reduce => &self.reduce_spec,
        }
    }

    fn spec_total(&self) -> usize {
        self.map_spec.load(Ordering::Relaxed) + self.reduce_spec.load(Ordering::Relaxed)
    }

    /// Consume one pending preemption request, if any. Called by
    /// speculative attempts at their progress checkpoints; returning `true`
    /// means "abort now, your slot is owed to a starved tenant".
    fn take_preempt(&self) -> bool {
        self.preempt
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok()
    }

    fn view(&self, kind: SlotKind) -> JobView {
        JobView {
            seq: self.seq,
            tenant: self.tenant.clone(),
            demand: self.demand_atomic(kind).load(Ordering::Relaxed),
            held: self.held_atomic(kind).load(Ordering::Relaxed),
            speculative: self.spec_atomic(kind).load(Ordering::Relaxed),
        }
    }
}

/// The shared slot-lease pool: per-node free map/reduce slot counts (sized
/// from the tasktrackers) plus the accounts of every running job.
struct SlotPool {
    map_free: HashMap<NodeId, usize>,
    reduce_free: HashMap<NodeId, usize>,
    map_total: usize,
    reduce_total: usize,
    jobs: Vec<Arc<JobAccount>>,
}

impl SlotPool {
    fn new(trackers: &[TaskTracker]) -> Self {
        let mut map_free: HashMap<NodeId, usize> = HashMap::new();
        let mut reduce_free: HashMap<NodeId, usize> = HashMap::new();
        for t in trackers {
            *map_free.entry(t.node).or_insert(0) += t.map_slots;
            *reduce_free.entry(t.node).or_insert(0) += t.reduce_slots;
        }
        let map_total = map_free.values().sum();
        let reduce_total = reduce_free.values().sum();
        SlotPool {
            map_free,
            reduce_free,
            map_total,
            reduce_total,
            jobs: Vec::new(),
        }
    }

    fn free_mut(&mut self, kind: SlotKind) -> &mut HashMap<NodeId, usize> {
        match kind {
            SlotKind::Map => &mut self.map_free,
            SlotKind::Reduce => &mut self.reduce_free,
        }
    }

    fn free(&self, kind: SlotKind) -> &HashMap<NodeId, usize> {
        match kind {
            SlotKind::Map => &self.map_free,
            SlotKind::Reduce => &self.reduce_free,
        }
    }

    fn total(&self, kind: SlotKind) -> usize {
        match kind {
            SlotKind::Map => self.map_total,
            SlotKind::Reduce => self.reduce_total,
        }
    }

    fn views(&self, kind: SlotKind) -> Vec<JobView> {
        self.jobs.iter().map(|a| a.view(kind)).collect()
    }
}

/// The admission queue: jobs waiting to be activated and jobs currently
/// running, as `(seq, tenant)` pairs.
#[derive(Default)]
struct Admission {
    queued: Vec<(u64, String)>,
    running: Vec<(u64, String)>,
}

impl Admission {
    fn running_of(&self, tenant: &str) -> usize {
        self.running.iter().filter(|(_, t)| t == tenant).count()
    }
}

/// Default bound on concurrently running jobs
/// ([`JobTracker::with_max_concurrent_jobs`] overrides it).
const DEFAULT_MAX_CONCURRENT_JOBS: usize = 4;

/// The multi-tenant engine every [`JobTracker`] clone shares: the pluggable
/// scheduler, per-tenant quotas and the usage ledger, the admission queue,
/// and the slot-lease pool.
struct Engine {
    scheduler: Mutex<Arc<dyn JobScheduler>>,
    quotas: Mutex<HashMap<String, TenantQuota>>,
    ledger: Mutex<HashMap<String, TenantUsage>>,
    admission: Mutex<Admission>,
    admission_cv: Condvar,
    pool: Mutex<SlotPool>,
    max_active: AtomicUsize,
    seq: AtomicU64,
    /// Serializes the exists-then-mkdirs check of job preparation, so two
    /// concurrent jobs with the same output directory race to exactly one
    /// winner (the loser gets `OutputExists`), never to a shared directory.
    prepare_lock: Mutex<()>,
}

impl Engine {
    fn new(trackers: &[TaskTracker]) -> Self {
        Engine {
            scheduler: Mutex::new(Arc::new(FifoScheduler)),
            quotas: Mutex::new(HashMap::new()),
            ledger: Mutex::new(HashMap::new()),
            admission: Mutex::new(Admission::default()),
            admission_cv: Condvar::new(),
            pool: Mutex::new(SlotPool::new(trackers)),
            max_active: AtomicUsize::new(DEFAULT_MAX_CONCURRENT_JOBS),
            seq: AtomicU64::new(0),
            prepare_lock: Mutex::new(()),
        }
    }

    fn quota_of(&self, tenant: &str) -> TenantQuota {
        self.quotas.lock().get(tenant).copied().unwrap_or_default()
    }

    fn usage_of(&self, tenant: &str) -> TenantUsage {
        self.ledger.lock().get(tenant).copied().unwrap_or_default()
    }

    /// Admission-quota check and queue insertion. Returns the job's
    /// submission sequence number (also its scratch-namespace tag).
    fn enqueue(&self, tenant: &str) -> MrResult<u64> {
        let quota = self.quota_of(tenant);
        let usage = self.usage_of(tenant);
        if usage.namespace_entries >= quota.max_namespace_entries {
            return Err(MrError::QuotaExceeded {
                tenant: tenant.to_string(),
                reason: format!(
                    "namespace budget exhausted ({} of {} entries used)",
                    usage.namespace_entries, quota.max_namespace_entries
                ),
            });
        }
        if usage.storage_bytes >= quota.max_storage_bytes {
            return Err(MrError::QuotaExceeded {
                tenant: tenant.to_string(),
                reason: format!(
                    "storage budget exhausted ({} of {} bytes used)",
                    usage.storage_bytes, quota.max_storage_bytes
                ),
            });
        }
        let mut adm = self.admission.lock();
        let queued = adm.queued.iter().filter(|(_, t)| t == tenant).count();
        if queued >= quota.max_queued_jobs {
            return Err(MrError::QuotaExceeded {
                tenant: tenant.to_string(),
                reason: format!(
                    "admission queue full ({queued} jobs queued, limit {})",
                    quota.max_queued_jobs
                ),
            });
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        adm.queued.push((seq, tenant.to_string()));
        self.admission_cv.notify_all();
        Ok(seq)
    }

    /// Remove a queued job that will never run (driver-thread spawn failed).
    fn abandon(&self, seq: u64) {
        let mut adm = self.admission.lock();
        adm.queued.retain(|(s, _)| *s != seq);
        self.admission_cv.notify_all();
    }

    /// Block until the scheduler activates this job: a running-jobs slot is
    /// free and [`JobScheduler::pick_next`] chooses it among the queued jobs
    /// whose tenant is under its running-jobs quota.
    fn await_activation(&self, seq: u64, tenant: &str) {
        let scheduler = self.scheduler.lock().clone();
        let mut adm = self.admission.lock();
        loop {
            if adm.running.len() < self.max_active.load(Ordering::Relaxed) {
                let quotas = self.quotas.lock();
                let eligible: Vec<QueuedView> = adm
                    .queued
                    .iter()
                    .filter_map(|(s, t)| {
                        let quota = quotas.get(t).copied().unwrap_or_default();
                        let running = adm.running_of(t);
                        (running < quota.max_running_jobs).then(|| QueuedView {
                            seq: *s,
                            tenant: t.clone(),
                            running_of_tenant: running,
                        })
                    })
                    .collect();
                drop(quotas);
                if let Some(i) = scheduler.pick_next(&eligible) {
                    if eligible[i].seq == seq {
                        adm.queued.retain(|(s, _)| *s != seq);
                        adm.running.push((seq, tenant.to_string()));
                        // Wake the other waiters: more activation slots may
                        // remain, and their eligibility just changed.
                        self.admission_cv.notify_all();
                        return;
                    }
                }
            }
            self.admission_cv.wait(&mut adm);
        }
    }

    /// Register the activated job's account with the slot pool.
    fn register(&self, seq: u64, tenant: &str) -> Arc<JobAccount> {
        let account = Arc::new(JobAccount::new(seq, tenant));
        self.pool.lock().jobs.push(account.clone());
        account
    }

    /// Tear down a finished job: deregister its account, settle the
    /// tenant's ledger with what the job actually produced, free its
    /// running-jobs slot and wake the admission queue.
    fn finish(&self, account: &JobAccount, result: Option<&JobResult>) {
        self.pool.lock().jobs.retain(|j| j.seq != account.seq);
        if let Some(r) = result {
            let mut ledger = self.ledger.lock();
            let usage = ledger.entry(account.tenant.clone()).or_default();
            usage.namespace_entries += r.output_files.len() as u64;
            usage.storage_bytes += r.output_bytes;
            usage.jobs_completed += 1;
        }
        let mut adm = self.admission.lock();
        adm.running.retain(|(s, _)| *s != account.seq);
        self.admission_cv.notify_all();
    }

    /// Try to lease a slot of `kind` on `node` for regular (non-speculative)
    /// work: the slot must be free and the scheduler must pick this job.
    /// On a miss with the pool fully exhausted, a starved tenant files a
    /// preemption request against some job's speculative clones.
    fn try_acquire(&self, account: &JobAccount, node: NodeId, kind: SlotKind) -> bool {
        let scheduler = self.scheduler.lock().clone();
        let mut pool = self.pool.lock();
        let views = pool.views(kind);
        let total = pool.total(kind);
        let node_free = pool.free(kind).get(&node).copied().unwrap_or(0);
        let granted = node_free > 0
            && scheduler
                .pick(kind, total, &views)
                .is_some_and(|i| pool.jobs[i].seq == account.seq);
        if granted {
            *pool.free_mut(kind).get_mut(&node).expect("node in pool") -= 1;
            account.held_atomic(kind).fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let total_free: usize = pool.free(kind).values().sum();
        if total_free == 0 {
            let starved = scheduler.starved(kind, total, &views);
            if starved.contains(&account.tenant) {
                // Preempt duplicate work first: ask any job running more
                // speculative clones than it has pending preemptions to give
                // one back at its next progress checkpoint.
                if let Some(victim) = pool.jobs.iter().find(|j| {
                    j.seq != account.seq && j.spec_total() > j.preempt.load(Ordering::Relaxed)
                }) {
                    victim.preempt.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        false
    }

    /// Try to lease a slot of `kind` on `node` for a speculative clone.
    /// Granted only when *no* running job has real demand of that kind —
    /// clones soak up genuinely idle capacity and never displace primary
    /// attempts (which also means no tenant can be starved at grant time).
    fn try_acquire_idle(&self, account: &JobAccount, node: NodeId, kind: SlotKind) -> bool {
        let mut pool = self.pool.lock();
        if pool.free(kind).get(&node).copied().unwrap_or(0) == 0 {
            return false;
        }
        if pool
            .jobs
            .iter()
            .any(|j| j.demand_atomic(kind).load(Ordering::Relaxed) > 0)
        {
            return false;
        }
        *pool.free_mut(kind).get_mut(&node).expect("node in pool") -= 1;
        account.held_atomic(kind).fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Return a lease to the pool.
    fn release(&self, account: &JobAccount, node: NodeId, kind: SlotKind) {
        let mut pool = self.pool.lock();
        *pool.free_mut(kind).get_mut(&node).expect("node in pool") += 1;
        account.held_atomic(kind).fetch_sub(1, Ordering::Relaxed);
    }
}

/// Handle to a job submitted with [`JobTracker::submit`]: join it with
/// [`JobHandle::wait`].
pub struct JobHandle {
    seq: u64,
    rx: mpsc::Receiver<MrResult<JobResult>>,
}

impl JobHandle {
    /// The job's submission sequence number (its position in FIFO order,
    /// and the tag of its scratch namespace).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Block until the job finishes and return its report.
    pub fn wait(self) -> MrResult<JobResult> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(MrError::Storage(
                "job driver thread exited without reporting a result".into(),
            ))
        })
    }
}

/// Where a reduce task pulls one merge source from: a single map's spill, or
/// a merged run the compactor built from a contiguous map-id range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchSource {
    /// The committed spill of map task `map_id`.
    Spill { map_id: usize },
    /// A merged run compacted from spills `start..start + len`.
    Run { start: usize, len: usize },
}

impl FetchSource {
    /// First map id the source covers. Sources cover disjoint contiguous
    /// ranges, so ordering fetched runs by this restores global map-id order
    /// — which the k-way merge's tie-break needs to reproduce the oracle.
    fn start(&self) -> usize {
        match *self {
            FetchSource::Spill { map_id } => map_id,
            FetchSource::Run { start, .. } => start,
        }
    }

    /// Number of map tasks the source covers.
    fn len(&self) -> usize {
        match *self {
            FetchSource::Spill { .. } => 1,
            FetchSource::Run { len, .. } => len,
        }
    }

    /// The committed file the source lives in.
    fn path(&self, scratch: &JobScratch) -> String {
        match *self {
            FetchSource::Spill { map_id } => scratch.spill_path(map_id),
            FetchSource::Run { start, len } => scratch.run_path(start, len),
        }
    }
}

/// Minimum contiguous committed spills a compactor merges while map tasks
/// are still running; once the map phase is done any leftover pair is worth
/// merging, and isolated singles are published unmerged.
const COMPACTION_MIN_BATCH: usize = 4;

/// Merge-spill compaction bookkeeping, guarded by the map-phase mutex.
///
/// Compaction only ever merges *contiguous* map-id ranges: the k-way merge
/// breaks key ties toward the lower run index, so a run interleaving map ids
/// with its neighbours would put equal keys out of the oracle's
/// (map id, emit order) sequence. Contiguous ranges keep every record of run
/// A strictly before or after every record of run B in map-id terms.
struct CompactionPlan {
    /// Compaction is active for this job (threshold exceeded, reducers
    /// exist).
    enabled: bool,
    /// Per-map flag: the spill is claimed by a compactor or already
    /// published as a fetch source. Never cleared — a failed compaction
    /// publishes its claimed spills unmerged instead of unclaiming them.
    claimed: Vec<bool>,
    /// Published fetch sources in publication order. Grows monotonically;
    /// reducers consume it as a queue and never see an entry retracted.
    sources: Vec<FetchSource>,
    /// Sum of source lengths: how many map tasks the sources cover so far.
    covered: usize,
    /// Scratch-name sequence for compactor attempts.
    attempt_seq: usize,
    /// Merged runs committed.
    runs: u64,
    /// Spills folded into merged runs.
    merged_spills: u64,
    /// Bytes of merged-run files written.
    bytes: u64,
}

impl CompactionPlan {
    fn new(enabled: bool, num_maps: usize) -> Self {
        CompactionPlan {
            enabled,
            claimed: vec![false; num_maps],
            sources: Vec::new(),
            covered: 0,
            attempt_seq: 0,
            runs: 0,
            merged_spills: 0,
            bytes: 0,
        }
    }

    /// Every committed spill is covered by a published source (reducers can
    /// finish without further compactor progress).
    fn complete(&self) -> bool {
        !self.enabled || self.covered == self.claimed.len()
    }
}

/// Shared map-phase state guarded by one mutex.
struct MapPhase {
    /// The attempt state machine: pending/running/committed tasks.
    book: TaskBook,
    /// Per-task counters of the *winning* attempt, filled as tasks commit
    /// (`partitions` cleared — the data lives in the spill files).
    results: Vec<Option<MapTaskOutput>>,
    failure: Option<MrError>,
    locality: LocalityCounters,
    /// Output bytes written directly by map tasks (map-only jobs).
    map_output_bytes: u64,
    map_output_records: u64,
    output_files: Vec<String>,
    /// Clock reading when the last task committed (map-only jobs).
    finished_at: Option<Duration>,
    /// Merge-spill compaction state (inert when disabled).
    plan: CompactionPlan,
}

/// Shared reduce-phase state.
struct ReducePhase {
    book: TaskBook,
    failure: Option<MrError>,
    output_bytes: u64,
    output_records: u64,
    output_files: Vec<String>,
    segments_fetched: u64,
    merge_runs: u64,
    read_round_trips: u64,
    read_bytes: u64,
    /// Clock reading when the last partition committed.
    finished_at: Option<Duration>,
}

impl JobTracker {
    /// Create a jobtracker over one tasktracker per node of the topology,
    /// with default slot counts and the production [`WallClock`].
    pub fn new(topology: &ClusterTopology) -> Self {
        let trackers: Vec<TaskTracker> = topology.all_nodes().map(TaskTracker::new).collect();
        let engine = Arc::new(Engine::new(&trackers));
        JobTracker {
            topology: topology.clone(),
            trackers,
            clock: Arc::new(WallClock::new()),
            control: None,
            engine,
        }
    }

    /// Create a jobtracker over an explicit set of tasktrackers.
    pub fn with_trackers(topology: &ClusterTopology, trackers: Vec<TaskTracker>) -> Self {
        assert!(!trackers.is_empty(), "at least one tasktracker is required");
        let engine = Arc::new(Engine::new(&trackers));
        JobTracker {
            topology: topology.clone(),
            trackers,
            clock: Arc::new(WallClock::new()),
            control: None,
            engine,
        }
    }

    /// Builder-style clock override: job timing (attempt runtimes, straggler
    /// detection, reported completion time) reads this clock. Tests inject a
    /// [`simcluster::clock::SimClock`] here.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Builder-style transport attachment for the control plane: once set,
    /// every task claim and outcome report between a tasktracker slot and
    /// the jobtracker is charged as one small framed exchange on
    /// `transport`, with the jobtracker homed at `jt_node`. With a
    /// [`wire::SimNet`] this puts the master on the simulated network, so
    /// its latency shows up in job makespans; control traffic is metered in
    /// [`JobTracker::control_counters`].
    pub fn with_transport(mut self, transport: Arc<dyn Transport>, jt_node: NodeId) -> Self {
        self.control = Some(Arc::new(ControlWire {
            transport,
            counters: wire::Counters::new(),
            jt_node,
        }));
        self
    }

    /// Builder-style scheduler override (FIFO by default). Shared by every
    /// clone of this jobtracker — set it before submitting jobs.
    pub fn with_scheduler(self, scheduler: Arc<dyn JobScheduler>) -> Self {
        *self.engine.scheduler.lock() = scheduler;
        self
    }

    /// Builder-style bound on concurrently *running* jobs (default 4);
    /// further admitted jobs wait in the queue. Clamped to at least 1.
    pub fn with_max_concurrent_jobs(self, n: usize) -> Self {
        self.engine.max_active.store(n.max(1), Ordering::Relaxed);
        self
    }

    /// Builder-style per-tenant admission quota (unlimited by default).
    pub fn with_tenant_quota(self, tenant: &str, quota: TenantQuota) -> Self {
        self.engine.quotas.lock().insert(tenant.to_string(), quota);
        self
    }

    /// The configured scheduler's name ("fifo" unless overridden).
    pub fn scheduler_name(&self) -> &'static str {
        self.engine.scheduler.lock().name()
    }

    /// What `tenant`'s completed jobs have consumed so far (the ledger the
    /// namespace/storage quota budgets are checked against).
    pub fn tenant_usage(&self, tenant: &str) -> TenantUsage {
        self.engine.usage_of(tenant)
    }

    /// Control-plane wire counters: claims are read exchanges, outcome
    /// reports are writes. `None` until [`JobTracker::with_transport`].
    pub fn control_counters(&self) -> Option<&wire::Counters> {
        self.control.as_deref().map(|c| &c.counters)
    }

    /// The tasktrackers this jobtracker drives.
    pub fn trackers(&self) -> &[TaskTracker] {
        &self.trackers
    }

    /// The cluster topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Validate the job's output location and expand its input into splits.
    /// The exists-then-create check runs under the engine's prepare lock, so
    /// two concurrent jobs racing for one output directory get exactly one
    /// winner.
    fn prepare(&self, fs: &dyn DistFs, job: &Job) -> MrResult<Vec<InputSplit>> {
        let config = &job.config;
        if config.output_dir.is_empty() {
            return Err(MrError::InvalidJob(
                "output directory must not be empty".into(),
            ));
        }
        {
            let _guard = self.engine.prepare_lock.lock();
            if fs.exists(&config.output_dir) {
                return Err(MrError::OutputExists(config.output_dir.clone()));
            }
            fs.mkdirs(&config.output_dir)?;
        }
        compute_splits(fs, &config.input, config.split_size)
    }

    /// Submit a job for asynchronous execution and return a [`JobHandle`].
    ///
    /// Admission quotas (queue depth, namespace/storage budgets) are checked
    /// synchronously — a refused job fails here with
    /// [`MrError::QuotaExceeded`], not at the handle. The job then waits in
    /// the admission queue until the scheduler activates it, runs on the
    /// shared slot pool alongside every other active job, and reports
    /// through the handle.
    pub fn submit(&self, fs: Arc<dyn DistFs>, job: Job) -> MrResult<JobHandle> {
        let tenant = job.config.tenant.clone();
        let seq = self.engine.enqueue(&tenant)?;
        let (tx, rx) = mpsc::sync_channel(1);
        let this = self.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("mr-driver-{seq}"))
            .spawn(move || {
                this.engine.await_activation(seq, &tenant);
                let account = this.engine.register(seq, &tenant);
                let result = this.drive(&*fs, &job, &account);
                this.engine.finish(&account, result.as_ref().ok());
                let _ = tx.send(result);
            });
        if spawned.is_err() {
            self.engine.abandon(seq);
            return Err(MrError::Storage(
                "failed to spawn the job driver thread".into(),
            ));
        }
        Ok(JobHandle { seq, rx })
    }

    /// Run a job over the given storage backend and return its report: the
    /// submit-and-wait shim over the multi-tenant engine. The calling thread
    /// is the driver — it queues through admission like any submitted job,
    /// then executes the job in place.
    pub fn run(&self, fs: &dyn DistFs, job: &Job) -> MrResult<JobResult> {
        let tenant = job.config.tenant.clone();
        let seq = self.engine.enqueue(&tenant)?;
        self.engine.await_activation(seq, &tenant);
        let account = self.engine.register(seq, &tenant);
        let result = self.drive(fs, job, &account);
        self.engine.finish(&account, result.as_ref().ok());
        result
    }

    /// Execute an activated job over the given storage backend.
    ///
    /// This is the storage-materialized data path: map outputs spill through
    /// `fs` into the job's scoped scratch namespace, reduce tasks pull
    /// segments with positioned reads as the spills commit, and every task
    /// output is rename-committed. Slot loops lease slots from the shared
    /// pool before claiming work, so concurrent jobs share the cluster under
    /// the configured scheduler.
    fn drive(&self, fs: &dyn DistFs, job: &Job, account: &Arc<JobAccount>) -> MrResult<JobResult> {
        let clock = &*self.clock;
        let start = clock.now();
        let config = &job.config;
        let splits = self.prepare(fs, job)?;
        let num_maps = splits.len();
        let map_only = config.num_reducers == 0;
        let partitions = if map_only { 1 } else { config.num_reducers };
        // Scratch dirs are tagged with the job's submission seq: concurrent
        // jobs over one DistFs (even with identical configs) never share
        // spill or attempt paths.
        let scratch = JobScratch::scoped(&config.output_dir, account.seq);
        fs.mkdirs(scratch.temporary_dir())?;
        if !map_only {
            fs.mkdirs(scratch.shuffle_dir())?;
        }
        let compaction = !map_only && config.compaction_threshold.is_some_and(|t| num_maps > t);

        let map_state = Mutex::new(MapPhase {
            book: TaskBook::new(num_maps),
            results: (0..num_maps).map(|_| None).collect(),
            failure: None,
            locality: LocalityCounters::default(),
            map_output_bytes: 0,
            map_output_records: 0,
            output_files: Vec::new(),
            finished_at: None,
            plan: CompactionPlan::new(compaction, num_maps),
        });
        let reduce_state = Mutex::new(ReducePhase {
            book: TaskBook::new(partitions),
            failure: None,
            output_bytes: 0,
            output_records: 0,
            output_files: Vec::new(),
            segments_fetched: 0,
            merge_runs: 0,
            read_round_trips: 0,
            read_bytes: 0,
            finished_at: None,
        });

        // One batch of slot loops for both phases: reduce slots start pulling
        // committed segments while map slots are still running. The loops are
        // built once and handed to the configured dispatcher — scoped tasks on
        // the shared executor pool, or (legacy) one scoped OS thread each.
        let mut slots: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        let control = self.control.as_deref();
        let engine = &*self.engine;
        let account = &**account;
        let scratch = &scratch;
        for tracker in &self.trackers {
            for _slot in 0..tracker.map_slots {
                let map_state = &map_state;
                let splits = &splits;
                let topology = &self.topology;
                let tracker = *tracker;
                let output_dir = config.output_dir.clone();
                let max_attempts = config.max_task_attempts;
                // Each slot gets a storage handle bound to the tracker's
                // node, so its I/O originates there.
                let local_fs = fs.on_node(tracker.node);
                slots.push(Box::new(move || {
                    map_worker_loop(
                        &*local_fs,
                        topology,
                        tracker,
                        splits,
                        job,
                        partitions,
                        map_only,
                        &output_dir,
                        scratch,
                        max_attempts,
                        clock,
                        control,
                        engine,
                        account,
                        map_state,
                    );
                }));
            }
            if !map_only {
                for _slot in 0..tracker.reduce_slots {
                    let map_state = &map_state;
                    let reduce_state = &reduce_state;
                    let node = tracker.node;
                    let output_dir = config.output_dir.clone();
                    let max_attempts = config.max_task_attempts;
                    let local_fs = fs.on_node(node);
                    slots.push(Box::new(move || {
                        reduce_worker_loop(
                            &*local_fs,
                            job,
                            node,
                            &output_dir,
                            scratch,
                            num_maps,
                            partitions,
                            max_attempts,
                            clock,
                            control,
                            engine,
                            account,
                            map_state,
                            reduce_state,
                        );
                    }));
                }
            }
        }
        miniexec::scope_blocking(|scope| {
            for slot in slots {
                scope.spawn(slot);
            }
        });

        let mut map_state = map_state.into_inner();
        if let Some(err) = map_state.failure.take() {
            // Failed jobs leave their committed part files for post-mortem
            // (as Hadoop does), but not the shuffle/scratch debris.
            scratch.cleanup(fs);
            return Err(err);
        }
        let map_speculation = map_state.book.speculation();
        let map_retries = map_state.book.retries();
        let map_outputs: Vec<MapTaskOutput> = map_state
            .results
            .into_iter()
            .map(|r| r.expect("all map tasks finished"))
            .collect();
        let input_records: u64 = map_outputs.iter().map(|o| o.records_read).sum();
        let input_bytes: u64 = map_outputs.iter().map(|o| o.bytes_read).sum();
        let mut counters = ShuffleCounters::default();
        for o in &map_outputs {
            counters.spill_bytes += o.spilled_bytes;
            counters.spill_records += o.spilled_records;
            counters.combine_input_records += o.combine_input_records;
            counters.combine_output_records += o.combine_output_records;
        }

        if map_only {
            scratch.cleanup(fs);
            let finish = map_state.finished_at.unwrap_or_else(|| clock.now());
            let mut output_files = map_state.output_files;
            output_files.sort();
            return Ok(JobResult {
                job_name: config.name.clone(),
                fs_name: fs.name().to_string(),
                map_tasks: num_maps,
                reduce_tasks: 0,
                locality: map_state.locality,
                task_retries: map_retries,
                input_records,
                output_records: map_state.map_output_records,
                input_bytes,
                output_bytes: map_state.map_output_bytes,
                shuffle: counters,
                speculation: map_speculation,
                elapsed: finish.saturating_sub(start),
                output_files,
            });
        }

        let mut reduce_state = reduce_state.into_inner();
        if let Some(err) = reduce_state.failure.take() {
            scratch.cleanup(fs);
            return Err(err);
        }
        counters.segments_fetched = reduce_state.segments_fetched;
        counters.merge_runs = reduce_state.merge_runs;
        counters.shuffle_read_round_trips = reduce_state.read_round_trips;
        counters.shuffle_read_bytes = reduce_state.read_bytes;
        counters.compaction_runs = map_state.plan.runs;
        counters.compaction_merged_spills = map_state.plan.merged_spills;
        counters.compaction_bytes = map_state.plan.bytes;
        let mut speculation = map_speculation;
        speculation.merge(&reduce_state.book.speculation());
        scratch.cleanup(fs);
        let finish = reduce_state.finished_at.unwrap_or_else(|| clock.now());
        let mut output_files = reduce_state.output_files;
        output_files.sort();

        Ok(JobResult {
            job_name: config.name.clone(),
            fs_name: fs.name().to_string(),
            map_tasks: num_maps,
            reduce_tasks: partitions,
            locality: map_state.locality,
            task_retries: map_retries + reduce_state.book.retries(),
            input_records,
            output_records: reduce_state.output_records,
            input_bytes,
            output_bytes: reduce_state.output_bytes,
            shuffle: counters,
            speculation,
            elapsed: finish.saturating_sub(start),
            output_files,
        })
    }

    /// Run a job with the original in-memory shuffle: map outputs are
    /// collected in RAM, regrouped behind a global barrier, and reduce output
    /// is written directly to its final path. Sequential and dead simple —
    /// this is the differential-testing oracle the storage-materialized
    /// [`JobTracker::run`] must agree with byte-for-byte, mirroring the
    /// `lookup_range_walk` pattern of the metadata read path.
    pub fn run_inmem(&self, fs: &dyn DistFs, job: &Job) -> MrResult<JobResult> {
        let start = self.clock.now();
        let config = &job.config;
        let splits = self.prepare(fs, job)?;
        let num_maps = splits.len();
        let map_only = config.num_reducers == 0;
        let partitions = if map_only { 1 } else { config.num_reducers };

        let mut locality = LocalityCounters::default();
        let mut input_records = 0u64;
        let mut input_bytes = 0u64;
        let mut output_records = 0u64;
        let mut output_bytes = 0u64;
        let mut output_files = Vec::new();
        let mut partition_data: Vec<Vec<(String, String)>> = vec![Vec::new(); partitions];

        for split in &splits {
            let mut out = run_map_task(fs, split, &*job.mapper, &*job.partitioner, partitions)?;
            // The oracle runs every task at the submitting node.
            locality.record(Locality::Remote);
            input_records += out.records_read;
            input_bytes += out.bytes_read;
            if map_only {
                let records = std::mem::take(&mut out.partitions[0]);
                let path = format!("{}/part-m-{:05}", config.output_dir, split.id);
                output_bytes += write_output_file(fs, &path, &records)?;
                output_records += records.len() as u64;
                output_files.push(path);
            } else {
                for (p, mut bucket) in out.partitions.into_iter().enumerate() {
                    // Same per-map transformation as the spill path, so the
                    // reduce inputs are identical record streams.
                    shuffle::sort_run(&mut bucket);
                    if let Some(combiner) = &config.combiner {
                        bucket = shuffle::combine_run(bucket, &**combiner)?.records;
                    }
                    partition_data[p].extend(bucket);
                }
            }
        }

        if !map_only {
            for (p, pairs) in partition_data.into_iter().enumerate() {
                let grouped = group_by_key(pairs);
                let records = run_reduce_task(&grouped, &*job.reducer)?;
                let path = format!("{}/part-r-{p:05}", config.output_dir);
                output_bytes += write_output_file(fs, &path, &records)?;
                output_records += records.len() as u64;
                output_files.push(path);
            }
        }

        output_files.sort();
        Ok(JobResult {
            job_name: config.name.clone(),
            fs_name: fs.name().to_string(),
            map_tasks: num_maps,
            reduce_tasks: if map_only { 0 } else { partitions },
            locality,
            task_retries: 0,
            input_records,
            output_records,
            input_bytes,
            output_bytes,
            shuffle: ShuffleCounters::default(),
            speculation: SpeculationCounters::default(),
            elapsed: self.clock.now().saturating_sub(start),
            output_files,
        })
    }
}

/// Route a failed attempt through the book and surface a fatal verdict as
/// the phase failure. Shared by both phases and by rename-commit errors.
fn record_attempt_failure(
    book: &mut TaskBook,
    failure: &mut Option<MrError>,
    phase: &str,
    id: TaskAttemptId,
    err: &MrError,
    max_attempts: usize,
    now: Duration,
) {
    if let FailureVerdict::Fatal(attempts) = book.record_failure(id, now, max_attempts) {
        if failure.is_none() {
            *failure = Some(MrError::TaskFailed {
                task: format!("{phase}-{}", id.task),
                attempts,
                last_error: err.to_string(),
            });
        }
    }
}

/// What an idle map slot claimed: a map attempt, or a compaction batch.
enum MapWork {
    Task(TaskAttemptId, Locality),
    Compact {
        start: usize,
        len: usize,
        seq: usize,
    },
}

/// Read-only probe: would [`claim_compaction`] make progress right now?
/// Used to compute the job's slot demand without mutating the plan — demand
/// must be exact, because a job that advertises demand it cannot claim
/// hoards scheduler grants other jobs are waiting for.
fn compaction_ready(s: &MapPhase) -> bool {
    if !s.plan.enabled || s.plan.complete() {
        return false;
    }
    let num_maps = s.plan.claimed.len();
    if s.book.all_committed() {
        // Every unclaimed spill is work: merged if it has a neighbour,
        // published as-is otherwise.
        return s.plan.claimed.iter().any(|claimed| !claimed);
    }
    let mut i = 0;
    while i < num_maps {
        if s.book.is_committed(i) && !s.plan.claimed[i] {
            let start = i;
            while i < num_maps && s.book.is_committed(i) && !s.plan.claimed[i] {
                i += 1;
            }
            if i - start >= COMPACTION_MIN_BATCH {
                return true;
            }
        } else {
            i += 1;
        }
    }
    false
}

/// Claim the longest contiguous range of committed, unclaimed spills worth
/// compacting. Called under the phase lock. While map tasks are still in
/// flight the range must reach [`COMPACTION_MIN_BATCH`] (bigger batches are
/// coming); once all maps committed, any pair is merged and isolated
/// leftovers are published directly as unmerged spill sources.
fn claim_compaction(s: &mut MapPhase) -> Option<(usize, usize, usize)> {
    if !s.plan.enabled {
        return None;
    }
    let num_maps = s.plan.claimed.len();
    let map_phase_done = s.book.all_committed();
    loop {
        // Longest maximal run of committed-and-unclaimed map ids.
        let mut best: Option<(usize, usize)> = None;
        let mut i = 0;
        while i < num_maps {
            if s.book.is_committed(i) && !s.plan.claimed[i] {
                let start = i;
                while i < num_maps && s.book.is_committed(i) && !s.plan.claimed[i] {
                    i += 1;
                }
                let len = i - start;
                if best.is_none_or(|(_, best_len)| len > best_len) {
                    best = Some((start, len));
                }
            } else {
                i += 1;
            }
        }
        let (start, len) = best?;
        let min_len = if map_phase_done {
            2
        } else {
            COMPACTION_MIN_BATCH
        };
        if len >= min_len {
            for claimed in &mut s.plan.claimed[start..start + len] {
                *claimed = true;
            }
            s.plan.attempt_seq += 1;
            return Some((start, len, s.plan.attempt_seq));
        }
        if map_phase_done {
            // Too short to merge and no more commits are coming: publish the
            // range's spills as-is and look for another range.
            for map_id in start..start + len {
                s.plan.claimed[map_id] = true;
                s.plan.sources.push(FetchSource::Spill { map_id });
                s.plan.covered += 1;
            }
            continue;
        }
        return None;
    }
}

/// Compact the committed spills `start..start + len` into one merged run:
/// bulk-read each spill, k-way-merge per partition, write the result in
/// spill layout to `_temporary` scratch, and rename-commit under the phase
/// lock. On any error the constituent spills are published unmerged —
/// compaction is an optimization, never a point of failure; the committed
/// spills themselves are untouched either way.
fn run_compaction(
    fs: &dyn DistFs,
    scratch: &JobScratch,
    partitions: usize,
    start: usize,
    len: usize,
    seq: usize,
    state: &Mutex<MapPhase>,
) {
    let task = format!("compact-{start:05}");
    let attempt_scratch = scratch.attempt_path(&task, seq);
    let outcome = (|| -> MrResult<u64> {
        let mut buckets: Vec<Vec<Vec<(String, String)>>> =
            (0..partitions).map(|_| Vec::with_capacity(len)).collect();
        for map_id in start..start + len {
            let path = scratch.spill_path(map_id);
            let spill = shuffle::read_spill_runs(fs, &path, partitions)?;
            for (p, bucket) in spill.partitions.into_iter().enumerate() {
                buckets[p].push(bucket);
            }
        }
        let merged: Vec<Vec<(String, String)>> =
            buckets.into_iter().map(shuffle::merge_runs).collect();
        let (bytes, _) = shuffle::write_spill(fs, &attempt_scratch, &merged)?;
        Ok(bytes)
    })();

    let mut s = state.lock();
    let published = match outcome {
        Ok(bytes) => match fs.rename(&attempt_scratch, &scratch.run_path(start, len)) {
            Ok(()) => {
                s.plan.sources.push(FetchSource::Run { start, len });
                s.plan.covered += len;
                s.plan.runs += 1;
                s.plan.merged_spills += len as u64;
                s.plan.bytes += bytes;
                true
            }
            Err(_) => false,
        },
        Err(_) => false,
    };
    if !published {
        for map_id in start..start + len {
            s.plan.sources.push(FetchSource::Spill { map_id });
        }
        s.plan.covered += len;
        drop(s);
        scratch.discard_attempt(fs, &task, seq);
    }
}

/// Worker loop executed by every map slot: publish the job's demand, lease a
/// slot from the shared pool, claim a pending task (or a compaction batch,
/// or — on an idle lease — a speculative clone of a straggler), execute it,
/// write its output to the attempt's scoped `_temporary` scratch, and
/// rename-commit under the phase lock — first finished attempt wins, losers
/// are discarded. Speculative clones run their map with a progress callback
/// that both feeds the LATE estimator and honours preemption requests.
#[allow(clippy::too_many_arguments)]
fn map_worker_loop(
    fs: &dyn DistFs,
    topology: &ClusterTopology,
    tracker: TaskTracker,
    splits: &[InputSplit],
    job: &Job,
    partitions: usize,
    map_only: bool,
    output_dir: &str,
    scratch: &JobScratch,
    max_attempts: usize,
    clock: &dyn Clock,
    control: Option<&ControlWire>,
    engine: &Engine,
    account: &JobAccount,
    state: &Mutex<MapPhase>,
) {
    loop {
        // Publish this job's claimable map work so the scheduler can
        // arbitrate, and decide which tier of work this slot looks for.
        // Demand counts pending tasks and ready compaction batches —
        // speculation is not demand, it only uses leases nobody wants.
        let (real_demand, spec_possible) = {
            let s = state.lock();
            if s.failure.is_some() || (s.book.all_committed() && s.plan.complete()) {
                account.map_demand.store(0, Ordering::Relaxed);
                return;
            }
            let demand = s.book.pending().len() + usize::from(compaction_ready(&s));
            let spec = job.config.speculation.is_some() && !s.book.all_committed();
            (demand, spec)
        };
        account.map_demand.store(real_demand, Ordering::Relaxed);

        let leased = if real_demand > 0 {
            engine.try_acquire(account, tracker.node, SlotKind::Map)
        } else if spec_possible {
            engine.try_acquire_idle(account, tracker.node, SlotKind::Map)
        } else {
            false
        };
        if !leased {
            miniexec::poll_wait(Duration::from_millis(1));
            continue;
        }

        // Claim an attempt under the phase lock (or give the lease back).
        let mut speculative = false;
        let claimed: Option<MapWork> = {
            let mut s = state.lock();
            if s.failure.is_some() || (s.book.all_committed() && s.plan.complete()) {
                None
            } else if let Some((pos, locality)) =
                pick_map_task(topology, tracker.node, s.book.pending(), splits)
            {
                Some(MapWork::Task(
                    s.book.claim_pending(pos, tracker.node, clock.now()),
                    locality,
                ))
            } else if let Some((start, len, seq)) = claim_compaction(&mut s) {
                // Nothing pending: fold committed spills into a merged run
                // so reducers fetch O(runs) segments instead of O(maps).
                Some(MapWork::Compact { start, len, seq })
            } else if real_demand == 0 {
                // Idle lease: offer this slot a speculative clone of the
                // slowest qualifying straggler.
                job.config.speculation.as_deref().and_then(|policy| {
                    s.book
                        .claim_speculative(tracker.node, clock.now(), policy)
                        .map(|id| {
                            speculative = true;
                            MapWork::Task(id, classify(topology, tracker.node, &splits[id.task]))
                        })
                })
            } else {
                None
            }
        };
        // Every successful claim is one control round trip to the master
        // (the empty poll is local slot idling, not a wire message).
        if claimed.is_some() {
            if let Some(cw) = control {
                cw.charge_claim(tracker.node);
            }
        }
        let (id, locality) = match claimed {
            Some(MapWork::Task(id, locality)) => (id, locality),
            Some(MapWork::Compact { start, len, seq }) => {
                run_compaction(fs, scratch, partitions, start, len, seq, state);
                engine.release(account, tracker.node, SlotKind::Map);
                continue;
            }
            None => {
                // Tasks are running on other slots; one could fail (requeue)
                // or turn into a straggler, so poll until the phase settles.
                engine.release(account, tracker.node, SlotKind::Map);
                miniexec::poll_wait(Duration::from_millis(1));
                continue;
            }
        };
        if speculative {
            account.map_spec.fetch_add(1, Ordering::Relaxed);
        }
        let task = format!("map-{:05}", id.task);
        let attempt_scratch = scratch.attempt_path(&task, id.attempt);

        // Execute the attempt outside the lock, writing all output to the
        // scratch path. Progress milestones feed the book (the LATE
        // estimator reads them) and double as preemption checkpoints: a
        // speculative clone whose job owes a starved tenant a slot aborts
        // here, mid-task. `part_written` carries (bytes, records) for
        // map-only jobs, whose tasks commit straight to a part file.
        let outcome = run_map_task_with_progress(
            fs,
            &splits[id.task],
            &*job.mapper,
            &*job.partitioner,
            partitions,
            &mut |frac| {
                state.lock().book.report_progress(id, frac);
                !(speculative && account.take_preempt())
            },
        )
        .and_then(|finished| {
            let Some(mut output) = finished else {
                return Ok(None); // preempted mid-task
            };
            if map_only {
                let records = std::mem::take(&mut output.partitions[0]);
                let bytes = write_output_file(fs, &attempt_scratch, &records)?;
                Ok(Some((output, (bytes, records.len() as u64))))
            } else {
                // Sort each bucket, run the spill-time combiner, and write
                // the spill image for the reducers to pull from.
                for bucket in output.partitions.iter_mut() {
                    shuffle::sort_run(bucket);
                }
                if let Some(combiner) = &job.config.combiner {
                    for bucket in output.partitions.iter_mut() {
                        let combined = shuffle::combine_run(std::mem::take(bucket), &**combiner)?;
                        output.combine_input_records += combined.input_records;
                        output.combine_output_records += combined.output_records;
                        *bucket = combined.records;
                    }
                }
                let (bytes, records) =
                    shuffle::write_spill(fs, &attempt_scratch, &output.partitions)?;
                output.spilled_bytes = bytes;
                output.spilled_records = records;
                output.partitions.clear(); // the data now lives in the spill
                Ok(Some((output, (0, 0))))
            }
        });

        // Commit arbitration under the phase lock: the first attempt of a
        // task to get here renames its scratch into place and merges its
        // counters; any later attempt is pure waste. Holding the lock across
        // the rename is what makes "exactly one winner" a hard invariant
        // (and keeps a rename failure from being misread as a lost race);
        // it is cheap because `DistFs::rename` is a metadata-only namespace
        // operation in every backend — the data bytes were already written
        // to scratch outside the lock.
        // The attempt reports its outcome (success, failure, or preemption)
        // before the commit arbitration — charged outside the phase lock.
        if let Some(cw) = control {
            cw.charge_report(tracker.node);
        }
        let mut discard_scratch = true;
        {
            let mut s = state.lock();
            match outcome {
                Ok(None) => {
                    // Preempted: the clone's partial work is pure waste by
                    // construction; the incumbent attempt is untouched.
                    s.book.record_preempted(id, clock.now());
                }
                Ok(Some((output, (part_bytes, part_records)))) => {
                    if s.book.is_committed(id.task) {
                        s.book.record_lost(id, clock.now());
                    } else {
                        let final_path = if map_only {
                            format!("{output_dir}/part-m-{:05}", id.task)
                        } else {
                            scratch.spill_path(id.task)
                        };
                        match fs.rename(&attempt_scratch, &final_path) {
                            Ok(()) => {
                                discard_scratch = false;
                                s.book.record_success(id, clock.now());
                                s.locality.record(locality);
                                if map_only {
                                    s.output_files.push(final_path);
                                    s.map_output_bytes += part_bytes;
                                    s.map_output_records += part_records;
                                }
                                s.results[id.task] = Some(output);
                                if s.book.all_committed() {
                                    s.finished_at = Some(clock.now());
                                }
                            }
                            Err(err) => {
                                let MapPhase { book, failure, .. } = &mut *s;
                                record_attempt_failure(
                                    book,
                                    failure,
                                    "map",
                                    id,
                                    &err,
                                    max_attempts,
                                    clock.now(),
                                );
                            }
                        }
                    }
                }
                Err(err) => {
                    let MapPhase { book, failure, .. } = &mut *s;
                    record_attempt_failure(
                        book,
                        failure,
                        "map",
                        id,
                        &err,
                        max_attempts,
                        clock.now(),
                    );
                }
            }
        }
        if speculative {
            account.map_spec.fetch_sub(1, Ordering::Relaxed);
        }
        if discard_scratch {
            // Clean the attempt's scratch (failed, lost, or preempted)
            // before retries.
            scratch.discard_attempt(fs, &task, id.attempt);
        }
        engine.release(account, tracker.node, SlotKind::Map);
    }
}

/// What one successful reduce-side fetch collected.
struct FetchedPartition {
    /// One key-sorted run per fetch source (per map task without compaction,
    /// per merged run / leftover spill with it), in map-id order.
    runs: Vec<Vec<(String, String)>>,
    segments: u64,
    round_trips: u64,
    bytes: u64,
}

/// Pull partition `partition`'s segment from every map task's spill,
/// fetching each as soon as its map commits. Returns `Ok(None)` when the map
/// phase failed (the job is going down; nothing to reduce).
fn fetch_partition(
    fs: &dyn DistFs,
    scratch: &JobScratch,
    partition: usize,
    num_maps: usize,
    partitions: usize,
    map_state: &Mutex<MapPhase>,
) -> MrResult<Option<FetchedPartition>> {
    if map_state.lock().plan.enabled {
        return fetch_partition_from_sources(
            fs, scratch, partition, num_maps, partitions, map_state,
        );
    }
    let mut runs: Vec<Option<Vec<(String, String)>>> = (0..num_maps).map(|_| None).collect();
    let mut fetched = 0usize;
    let mut segments = 0u64;
    let mut round_trips = 0u64;
    let mut bytes = 0u64;
    while fetched < num_maps {
        let (available, map_failed) = {
            let m = map_state.lock();
            let available: Vec<usize> = (0..num_maps)
                .filter(|&i| m.book.is_committed(i) && runs[i].is_none())
                .collect();
            (available, m.failure.is_some())
        };
        if available.is_empty() {
            if map_failed {
                return Ok(None);
            }
            miniexec::poll_wait(Duration::from_millis(1));
            continue;
        }
        for map_id in available {
            let path = scratch.spill_path(map_id);
            let segment = shuffle::read_segment(fs, &path, partition, partitions)?;
            segments += 1;
            round_trips += segment.round_trips;
            bytes += segment.bytes;
            runs[map_id] = Some(segment.records);
            fetched += 1;
        }
    }
    Ok(Some(FetchedPartition {
        runs: runs
            .into_iter()
            .map(|r| r.expect("all segments fetched"))
            .collect(),
        segments,
        round_trips,
        bytes,
    }))
}

/// The compaction-aware fetch: consume the published fetch-source queue
/// (merged runs and leftover spills) until the sources cover every map task.
/// The queue only grows, so speculative attempts of one partition can
/// consume it independently.
fn fetch_partition_from_sources(
    fs: &dyn DistFs,
    scratch: &JobScratch,
    partition: usize,
    num_maps: usize,
    partitions: usize,
    map_state: &Mutex<MapPhase>,
) -> MrResult<Option<FetchedPartition>> {
    let mut taken = 0usize;
    let mut covered = 0usize;
    let mut fetched: Vec<(usize, Vec<(String, String)>)> = Vec::new();
    let mut segments = 0u64;
    let mut round_trips = 0u64;
    let mut bytes = 0u64;
    while covered < num_maps {
        let (new_sources, map_failed) = {
            let m = map_state.lock();
            (m.plan.sources[taken..].to_vec(), m.failure.is_some())
        };
        if new_sources.is_empty() {
            if map_failed {
                return Ok(None);
            }
            miniexec::poll_wait(Duration::from_millis(1));
            continue;
        }
        taken += new_sources.len();
        for source in new_sources {
            let segment = shuffle::read_segment(fs, &source.path(scratch), partition, partitions)?;
            segments += 1;
            round_trips += segment.round_trips;
            bytes += segment.bytes;
            covered += source.len();
            fetched.push((source.start(), segment.records));
        }
    }
    // Sources cover disjoint contiguous map-id ranges: ordering the runs by
    // range start restores global map-id order, so the k-way merge's
    // tie-break still reproduces the oracle's (map id, emit order) sequence.
    fetched.sort_by_key(|&(start, _)| start);
    Ok(Some(FetchedPartition {
        runs: fetched.into_iter().map(|(_, records)| records).collect(),
        segments,
        round_trips,
        bytes,
    }))
}

/// How one reduce attempt ended, before commit arbitration.
enum ReduceOutcome {
    /// The map phase failed while this attempt was fetching; abort quietly.
    MapFailed,
    /// A speculative clone consumed a preemption request at the
    /// post-fetch checkpoint and gave its slot back.
    Preempted,
    /// The attempt produced output in its scratch path.
    Done {
        bytes: u64,
        records: u64,
        segments: u64,
        merge_runs: u64,
        round_trips: u64,
        read_bytes: u64,
    },
}

/// Worker loop executed by every reduce slot: publish demand, lease a slot,
/// claim a partition (or — on an idle lease — a speculative clone of a
/// straggling one), pull its segments as map spills commit, k-way-merge the
/// sorted runs, reduce, and rename-commit the part file under the phase lock
/// — first finished attempt wins.
#[allow(clippy::too_many_arguments)]
fn reduce_worker_loop(
    fs: &dyn DistFs,
    job: &Job,
    node: NodeId,
    output_dir: &str,
    scratch: &JobScratch,
    num_maps: usize,
    partitions: usize,
    max_attempts: usize,
    clock: &dyn Clock,
    control: Option<&ControlWire>,
    engine: &Engine,
    account: &JobAccount,
    map_state: &Mutex<MapPhase>,
    state: &Mutex<ReducePhase>,
) {
    loop {
        // The job is failing once either phase records a permanent failure.
        if map_state.lock().failure.is_some() {
            account.reduce_demand.store(0, Ordering::Relaxed);
            return;
        }
        let (real_demand, spec_possible) = {
            let s = state.lock();
            if s.failure.is_some() || s.book.all_committed() {
                account.reduce_demand.store(0, Ordering::Relaxed);
                return;
            }
            (
                s.book.pending().len(),
                job.config.speculation.is_some() && !s.book.all_committed(),
            )
        };
        account.reduce_demand.store(real_demand, Ordering::Relaxed);

        let leased = if real_demand > 0 {
            engine.try_acquire(account, node, SlotKind::Reduce)
        } else if spec_possible {
            engine.try_acquire_idle(account, node, SlotKind::Reduce)
        } else {
            false
        };
        if !leased {
            miniexec::poll_wait(Duration::from_millis(1));
            continue;
        }

        let mut speculative = false;
        let claimed = {
            let mut s = state.lock();
            if s.failure.is_some() || s.book.all_committed() {
                None
            } else if !s.book.pending().is_empty() {
                let pos = s.book.pending().len() - 1;
                Some(s.book.claim_pending(pos, node, clock.now()))
            } else if real_demand == 0 {
                job.config.speculation.as_deref().and_then(|policy| {
                    s.book
                        .claim_speculative(node, clock.now(), policy)
                        .inspect(|_| {
                            speculative = true;
                        })
                })
            } else {
                None
            }
        };
        let id = match claimed {
            Some(c) => {
                // One control round trip per claim, as on the map side.
                if let Some(cw) = control {
                    cw.charge_claim(node);
                }
                c
            }
            None => {
                // Partitions are running on other slots; one could fail and
                // requeue, so poll until the phase settles.
                engine.release(account, node, SlotKind::Reduce);
                miniexec::poll_wait(Duration::from_millis(1));
                continue;
            }
        };
        if speculative {
            account.reduce_spec.fetch_add(1, Ordering::Relaxed);
        }
        let task = format!("reduce-{:05}", id.task);
        let attempt_scratch = scratch.attempt_path(&task, id.attempt);

        let outcome = fetch_partition(fs, scratch, id.task, num_maps, partitions, map_state)
            .and_then(|fetched| {
                let Some(fetched) = fetched else {
                    return Ok(ReduceOutcome::MapFailed);
                };
                // Preemption checkpoint between the fetch and the expensive
                // merge+reduce+write: a speculative clone whose job owes a
                // starved tenant gives its slot back here.
                if speculative && account.take_preempt() {
                    return Ok(ReduceOutcome::Preempted);
                }
                let merge_runs = fetched.runs.iter().filter(|r| !r.is_empty()).count() as u64;
                let merged = shuffle::merge_runs(fetched.runs);
                let records = shuffle::reduce_merged(merged, &*job.reducer)?;
                let bytes = write_output_file(fs, &attempt_scratch, &records)?;
                Ok(ReduceOutcome::Done {
                    bytes,
                    records: records.len() as u64,
                    segments: fetched.segments,
                    merge_runs,
                    round_trips: fetched.round_trips,
                    read_bytes: fetched.bytes,
                })
            });

        // Report the attempt outcome to the master before arbitration.
        if let Some(cw) = control {
            cw.charge_report(node);
        }
        let mut discard_scratch = true;
        let mut exit = false;
        {
            let mut s = state.lock();
            match outcome {
                Ok(ReduceOutcome::MapFailed) => {
                    // Map phase failed; the job is going down. Close the
                    // attempt's bookkeeping so nothing stays `Running`.
                    s.book.record_abandoned(id);
                    exit = true;
                }
                Ok(ReduceOutcome::Preempted) => {
                    s.book.record_preempted(id, clock.now());
                }
                Ok(ReduceOutcome::Done {
                    bytes,
                    records,
                    segments,
                    merge_runs,
                    round_trips,
                    read_bytes,
                }) => {
                    if s.book.is_committed(id.task) {
                        s.book.record_lost(id, clock.now());
                    } else {
                        let final_path = format!("{output_dir}/part-r-{:05}", id.task);
                        match fs.rename(&attempt_scratch, &final_path) {
                            Ok(()) => {
                                discard_scratch = false;
                                s.book.record_success(id, clock.now());
                                s.output_bytes += bytes;
                                s.output_records += records;
                                s.output_files.push(final_path);
                                s.segments_fetched += segments;
                                s.merge_runs += merge_runs;
                                s.read_round_trips += round_trips;
                                s.read_bytes += read_bytes;
                                if s.book.all_committed() {
                                    s.finished_at = Some(clock.now());
                                }
                            }
                            Err(err) => {
                                let ReducePhase { book, failure, .. } = &mut *s;
                                record_attempt_failure(
                                    book,
                                    failure,
                                    "reduce",
                                    id,
                                    &err,
                                    max_attempts,
                                    clock.now(),
                                );
                            }
                        }
                    }
                }
                Err(err) => {
                    let ReducePhase { book, failure, .. } = &mut *s;
                    record_attempt_failure(
                        book,
                        failure,
                        "reduce",
                        id,
                        &err,
                        max_attempts,
                        clock.now(),
                    );
                }
            }
        }
        if speculative {
            account.reduce_spec.fetch_sub(1, Ordering::Relaxed);
        }
        if discard_scratch {
            scratch.discard_attempt(fs, &task, id.attempt);
        }
        engine.release(account, node, SlotKind::Reduce);
        if exit {
            account.reduce_demand.store(0, Ordering::Relaxed);
            return;
        }
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use crate::jobsched::FairScheduler;

    fn engine(nodes: u32, map_slots: usize) -> Engine {
        let trackers: Vec<TaskTracker> = (0..nodes)
            .map(|i| TaskTracker::new(NodeId(i)).with_slots(map_slots, 1))
            .collect();
        Engine::new(&trackers)
    }

    #[test]
    fn fifo_grants_the_oldest_demanding_job_and_denies_the_rest() {
        let e = engine(1, 2);
        let a = e.register(0, "acme");
        let b = e.register(1, "blue");
        a.map_demand.store(2, Ordering::Relaxed);
        b.map_demand.store(2, Ordering::Relaxed);
        let node = NodeId(0);
        assert!(!e.try_acquire(&b, node, SlotKind::Map), "fifo owes A first");
        assert!(e.try_acquire(&a, node, SlotKind::Map));
        assert!(e.try_acquire(&a, node, SlotKind::Map));
        assert_eq!(a.map_held.load(Ordering::Relaxed), 2);
        // Pool exhausted: nobody gets a lease until A releases.
        assert!(!e.try_acquire(&a, node, SlotKind::Map));
        e.release(&a, node, SlotKind::Map);
        a.map_demand.store(0, Ordering::Relaxed);
        // With A's demand gone, the freed slot flows to B.
        assert!(e.try_acquire(&b, node, SlotKind::Map));
    }

    #[test]
    fn idle_leases_require_zero_demand_everywhere() {
        let e = engine(1, 2);
        let a = e.register(0, "acme");
        let b = e.register(1, "blue");
        b.map_demand.store(1, Ordering::Relaxed);
        // B has real map demand, so no clone may take a map lease.
        assert!(!e.try_acquire_idle(&a, NodeId(0), SlotKind::Map));
        // Reduce demand is zero everywhere: idle reduce leases are fine.
        assert!(e.try_acquire_idle(&a, NodeId(0), SlotKind::Reduce));
        b.map_demand.store(0, Ordering::Relaxed);
        assert!(e.try_acquire_idle(&a, NodeId(0), SlotKind::Map));
    }

    #[test]
    fn starved_tenant_preempts_a_speculative_clone_and_inherits_the_slot() {
        let e = Engine::new(&[TaskTracker::new(NodeId(0)).with_slots(2, 1)]);
        *e.scheduler.lock() = Arc::new(FairScheduler::new());
        let a = e.register(0, "acme");
        let b = e.register(1, "blue");
        let node = NodeId(0);
        // A soaks up the whole pool with speculative clones (no demand
        // anywhere, so idle leases are granted).
        assert!(e.try_acquire_idle(&a, node, SlotKind::Map));
        assert!(e.try_acquire_idle(&a, node, SlotKind::Map));
        a.map_spec.store(2, Ordering::Relaxed);
        // B shows up with real demand: pool exhausted, fair share says B is
        // starved, so a preemption request lands on A's clones.
        b.map_demand.store(2, Ordering::Relaxed);
        assert!(!e.try_acquire(&b, node, SlotKind::Map));
        assert_eq!(a.preempt.load(Ordering::Relaxed), 1);
        // A clone consumes the request exactly once...
        assert!(a.take_preempt());
        assert!(!a.take_preempt());
        // ...and gives its slot back; B now gets the lease.
        a.map_spec.store(1, Ordering::Relaxed);
        e.release(&a, node, SlotKind::Map);
        assert!(e.try_acquire(&b, node, SlotKind::Map));
    }

    #[test]
    fn enqueue_enforces_queue_and_budget_quotas() {
        let e = engine(1, 1);
        e.quotas
            .lock()
            .insert("acme".into(), TenantQuota::unlimited().with_max_queued(1));
        assert!(e.enqueue("acme").is_ok());
        assert!(matches!(
            e.enqueue("acme"),
            Err(MrError::QuotaExceeded { .. })
        ));
        // Other tenants are unaffected.
        assert!(e.enqueue("blue").is_ok());

        // Namespace and storage budgets are checked against the ledger.
        e.quotas.lock().insert(
            "carbon".into(),
            TenantQuota::unlimited().with_max_namespace_entries(4),
        );
        e.ledger.lock().insert(
            "carbon".into(),
            TenantUsage {
                namespace_entries: 4,
                storage_bytes: 0,
                jobs_completed: 2,
            },
        );
        assert!(matches!(
            e.enqueue("carbon"),
            Err(MrError::QuotaExceeded { .. })
        ));
    }

    #[test]
    fn finish_settles_the_ledger_and_frees_the_account() {
        let e = engine(1, 1);
        let seq = e.enqueue("acme").unwrap();
        e.await_activation(seq, "acme");
        let account = e.register(seq, "acme");
        assert_eq!(e.pool.lock().jobs.len(), 1);
        let result = JobResult {
            job_name: "j".into(),
            fs_name: "BSFS".into(),
            map_tasks: 1,
            reduce_tasks: 1,
            locality: LocalityCounters::default(),
            task_retries: 0,
            input_records: 0,
            output_records: 5,
            input_bytes: 0,
            output_bytes: 123,
            shuffle: ShuffleCounters::default(),
            speculation: SpeculationCounters::default(),
            elapsed: Duration::from_secs(1),
            output_files: vec!["/out/part-r-00000".into(), "/out/part-r-00001".into()],
        };
        e.finish(&account, Some(&result));
        assert!(e.pool.lock().jobs.is_empty());
        assert!(e.admission.lock().running.is_empty());
        let usage = e.usage_of("acme");
        assert_eq!(usage.namespace_entries, 2);
        assert_eq!(usage.storage_bytes, 123);
        assert_eq!(usage.jobs_completed, 1);
    }
}
