//! Criterion bench for E2: concurrent reads of non-overlapping parts of one
//! shared file, BSFS vs HDFS, laptop scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapreduce::fs::DistFs;
use workloads::microbench::{prepare_shared_file, read_shared_file, MicrobenchConfig};

fn bench_read_shared(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_read_shared_file");
    group.sample_size(10);
    for &clients in bench::SMALL_CLIENT_COUNTS {
        let config = MicrobenchConfig {
            clients,
            bytes_per_client: 1 << 20,
            record_size: 4096,
        };
        let bsfs = bench::small_bsfs(4, 256 * 1024);
        prepare_shared_file(&bsfs, &config).unwrap();
        group.bench_with_input(BenchmarkId::new("BSFS", clients), &clients, |b, _| {
            b.iter(|| read_shared_file(&bsfs as &dyn DistFs, &config).unwrap())
        });
        println!(
            "E2/{clients} clients {}",
            bench::read_path_report(bsfs.inner().storage())
        );
        let hdfs = bench::small_hdfs(4, 256 * 1024);
        prepare_shared_file(&hdfs, &config).unwrap();
        group.bench_with_input(BenchmarkId::new("HDFS", clients), &clients, |b, _| {
            b.iter(|| read_shared_file(&hdfs as &dyn DistFs, &config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_read_shared);
criterion_main!(benches);
