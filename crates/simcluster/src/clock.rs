//! Injectable clocks for thread-based components.
//!
//! The flow simulator runs on [`crate::time::SimTime`], a virtual timeline it
//! advances itself inside one event loop. Thread-based components — the
//! MapReduce jobtracker, fault injectors — need something different: a clock
//! that *real threads* can read and sleep against, but whose passage of time
//! a test can control. The [`Clock`] trait is that seam:
//!
//! * [`WallClock`] is the production implementation — `now` is time since the
//!   clock was created, `sleep` is a real [`std::thread::sleep`];
//! * [`SimClock`] is a manually advanced virtual clock — `sleep` blocks the
//!   calling thread on a condvar until someone calls [`SimClock::advance`]
//!   past the deadline, so a test can inject "a task that takes 60 seconds"
//!   without the test suite ever waiting 60 real seconds, and a scheduler's
//!   timing decisions (straggler detection, speculation) become deterministic
//!   functions of virtual time.
//!
//! [`SimClock::drive`] is the standard harness for running thread-based code
//! under virtual time: it executes a closure on a scoped thread while the
//! calling thread pumps the clock forward in fixed steps until the closure
//! finishes, waking every virtual sleeper on the way.

use parking_lot::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A source of time that thread-based components read and sleep against.
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's origin.
    fn now(&self) -> Duration;

    /// Block the calling thread for `d` of this clock's time.
    fn sleep(&self, d: Duration);
}

/// The production clock: real time since construction, real sleeps.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock anchored at the moment of construction.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

struct SimClockState {
    /// Virtual microseconds since the clock's origin.
    now_us: u64,
    /// Deadlines (virtual µs) of threads currently blocked in `sleep`.
    sleepers: Vec<u64>,
}

/// A manually advanced virtual clock for deterministic timing tests.
///
/// `now` returns virtual time; `sleep` blocks the caller until the virtual
/// time has been advanced past its deadline by [`SimClock::advance`] (or one
/// of the pump helpers). No thread ever waits real time proportional to a
/// virtual delay.
pub struct SimClock {
    state: Mutex<SimClockState>,
    cv: Condvar,
}

impl SimClock {
    /// A virtual clock starting at zero.
    pub fn new() -> Self {
        SimClock {
            state: Mutex::new(SimClockState {
                now_us: 0,
                sleepers: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Current virtual time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.state.lock().now_us
    }

    /// Advance virtual time by `d`, waking every sleeper whose deadline has
    /// passed.
    pub fn advance(&self, d: Duration) {
        let mut s = self.state.lock();
        s.now_us = s.now_us.saturating_add(d.as_micros() as u64);
        drop(s);
        self.cv.notify_all();
    }

    /// Number of threads currently blocked in [`Clock::sleep`].
    pub fn sleeper_count(&self) -> usize {
        self.state.lock().sleepers.len()
    }

    /// Jump virtual time straight to the earliest pending sleeper deadline.
    /// Returns `false` (and leaves time untouched) when nothing is sleeping.
    pub fn advance_to_next_sleeper(&self) -> bool {
        let mut s = self.state.lock();
        let Some(&deadline) = s.sleepers.iter().min() else {
            return false;
        };
        s.now_us = s.now_us.max(deadline);
        drop(s);
        self.cv.notify_all();
        true
    }

    /// Advance virtual time by at most `step`, clamped to the earliest
    /// sleeper deadline, and only if someone is sleeping. Returns whether
    /// time moved. This is [`SimClock::drive`]'s tick: virtual time stands
    /// still while nothing virtual is pending, so the virtual runtime a
    /// running thread accrues does not depend on real scheduling latency.
    pub fn advance_while_sleeping(&self, step: Duration) -> bool {
        let mut s = self.state.lock();
        let Some(&next) = s.sleepers.iter().min() else {
            return false;
        };
        let stepped = s.now_us.saturating_add(step.as_micros() as u64);
        // `next` can be in the past relative to a concurrent advance; never
        // move backwards.
        s.now_us = stepped.min(next).max(s.now_us);
        drop(s);
        self.cv.notify_all();
        true
    }

    /// Run `f` on a scoped thread while this thread pumps the clock forward
    /// until `f` finishes: up to `step` of virtual time per tick, clamped to
    /// the earliest sleeper deadline, and only while a virtual sleep is
    /// pending. Between ticks the pump yields briefly in real time so the
    /// driven threads get a chance to run, block in virtual sleeps, and
    /// observe intermediate virtual times (a straggler detector polling
    /// `now` must be able to see the straggler *before* its sleep expires —
    /// that is why the pump steps instead of jumping to the deadline).
    /// Returns `f`'s result; panics in `f` are propagated.
    pub fn drive<T, F>(&self, step: Duration, f: F) -> T
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        assert!(!step.is_zero(), "the pump step must be positive");
        std::thread::scope(|scope| {
            let worker = scope.spawn(f);
            while !worker.is_finished() {
                // Let the driven threads reach their next blocking point.
                std::thread::sleep(Duration::from_millis(2));
                if worker.is_finished() {
                    break;
                }
                self.advance_while_sleeping(step);
            }
            match worker.join() {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            }
        })
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::new()
    }
}

impl Clock for SimClock {
    fn now(&self) -> Duration {
        Duration::from_micros(self.now_micros())
    }

    fn sleep(&self, d: Duration) {
        if d.is_zero() {
            return;
        }
        let mut s = self.state.lock();
        let deadline = s.now_us.saturating_add(d.as_micros() as u64);
        s.sleepers.push(deadline);
        // Wake any pump waiting for a sleeper to appear.
        self.cv.notify_all();
        while s.now_us < deadline {
            self.cv.wait(&mut s);
        }
        let pos = s
            .sleepers
            .iter()
            .position(|&d| d == deadline)
            .expect("own deadline registered");
        s.sleepers.swap_remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn wall_clock_moves_forward() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_only_moves_when_advanced() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_secs(3));
        assert_eq!(clock.now(), Duration::from_secs(3));
        clock.advance(Duration::from_millis(500));
        assert_eq!(clock.now_micros(), 3_500_000);
    }

    #[test]
    fn zero_sleep_returns_immediately_without_a_pump() {
        let clock = SimClock::new();
        clock.sleep(Duration::ZERO);
        assert_eq!(clock.sleeper_count(), 0);
    }

    #[test]
    fn sleepers_block_until_the_clock_passes_their_deadline() {
        let clock = Arc::new(SimClock::new());
        let woke = Arc::new(AtomicBool::new(false));
        let handle = {
            let clock = Arc::clone(&clock);
            let woke = Arc::clone(&woke);
            std::thread::spawn(move || {
                clock.sleep(Duration::from_secs(10));
                woke.store(true, Ordering::SeqCst);
            })
        };
        // Wait until the sleeper has registered, then advance short of the
        // deadline: it must stay blocked.
        while clock.sleeper_count() == 0 {
            std::thread::yield_now();
        }
        clock.advance(Duration::from_secs(9));
        std::thread::sleep(Duration::from_millis(5));
        assert!(!woke.load(Ordering::SeqCst), "9s < 10s deadline");
        clock.advance(Duration::from_secs(1));
        handle.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
        assert_eq!(clock.sleeper_count(), 0);
    }

    #[test]
    fn advance_to_next_sleeper_jumps_to_the_earliest_deadline() {
        let clock = Arc::new(SimClock::new());
        assert!(!clock.advance_to_next_sleeper(), "no sleepers yet");
        let h1 = {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || clock.sleep(Duration::from_secs(7)))
        };
        let h2 = {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || clock.sleep(Duration::from_secs(3)))
        };
        while clock.sleeper_count() < 2 {
            std::thread::yield_now();
        }
        assert!(clock.advance_to_next_sleeper());
        h2.join().unwrap();
        assert_eq!(clock.now(), Duration::from_secs(3));
        assert!(clock.advance_to_next_sleeper());
        h1.join().unwrap();
        assert_eq!(clock.now(), Duration::from_secs(7));
    }

    #[test]
    fn advance_while_sleeping_is_gated_and_clamped() {
        let clock = Arc::new(SimClock::new());
        // No sleepers: virtual time stands still, however often we tick.
        assert!(!clock.advance_while_sleeping(Duration::from_secs(1)));
        assert_eq!(clock.now_micros(), 0);

        let handle = {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || clock.sleep(Duration::from_millis(1500)))
        };
        while clock.sleeper_count() == 0 {
            std::thread::yield_now();
        }
        assert!(clock.advance_while_sleeping(Duration::from_secs(1)));
        assert_eq!(clock.now_micros(), 1_000_000, "a full step fits");
        assert!(clock.advance_while_sleeping(Duration::from_secs(1)));
        assert_eq!(clock.now_micros(), 1_500_000, "clamped to the deadline");
        handle.join().unwrap();
        assert!(!clock.advance_while_sleeping(Duration::from_secs(1)));
        assert_eq!(clock.now_micros(), 1_500_000);
    }

    #[test]
    fn drive_pumps_virtual_sleeps_without_real_waits() {
        let clock = SimClock::new();
        // A virtual hour of sleeping finishes in real milliseconds.
        let result = clock.drive(Duration::from_secs(600), || {
            clock.sleep(Duration::from_secs(3600));
            clock.now()
        });
        assert!(result >= Duration::from_secs(3600));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn drive_propagates_panics() {
        let clock = SimClock::new();
        clock.drive(Duration::from_secs(1), || panic!("boom"));
    }
}
