//! Criterion bench for E4: the Random Text Writer MapReduce job, BSFS vs
//! HDFS (real execution, laptop scale).

use criterion::{criterion_group, criterion_main, Criterion};
use mapreduce::fs::DistFs;

fn bench_random_text(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_random_text_writer");
    group.sample_size(10);
    group.bench_function("BSFS", |b| {
        b.iter(|| {
            let (bsfs, _) = bench::app_backends(256 * 1024);
            let job = workloads::random_text_writer_job("/rtw", 8, 32, 4096, 1);
            bench::run_job_on(&bsfs as &dyn DistFs, &bench::app_topology(), &job)
        })
    });
    group.bench_function("HDFS", |b| {
        b.iter(|| {
            let (_, hdfs) = bench::app_backends(256 * 1024);
            let job = workloads::random_text_writer_job("/rtw", 8, 32, 4096, 1);
            bench::run_job_on(&hdfs as &dyn DistFs, &bench::app_topology(), &job)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_random_text);
criterion_main!(benches);
