//! Distributed Grep (one of the paper's two evaluation applications) executed
//! through the MapReduce framework over BSFS, then over the HDFS baseline,
//! comparing job reports.
//!
//! ```bash
//! cargo run --example bsfs_mapreduce_grep
//! ```

use blobseer::{BlobSeer, BlobSeerConfig};
use bsfs::{Bsfs, BsfsConfig};
use hdfs_sim::{Hdfs, HdfsConfig};
use mapreduce::fs::{BsfsFs, DistFs, HdfsFs};
use mapreduce::jobtracker::JobTracker;
use simcluster::ClusterTopology;
use workloads::{distributed_grep_job, TextGenerator};

fn run_on(fs: &dyn DistFs, topo: &ClusterTopology, text: &str) {
    fs.write_file("/input/huge.txt", text.as_bytes()).unwrap();
    let job = distributed_grep_job(
        vec!["/input/huge.txt".into()],
        "/grep-output",
        "scintillant",
        64 * 1024,
    );
    let result = JobTracker::new(topo).run(fs, &job).expect("job");
    let output = fs.read_file(&result.output_files[0]).unwrap();
    println!(
        "{:>4}: {:?} -> {} maps ({} data-local), {} reduces, {:.3}s, output: {}",
        result.fs_name,
        job.config.name,
        result.map_tasks,
        result.locality.data_local,
        result.reduce_tasks,
        result.completion_secs(),
        String::from_utf8_lossy(&output).trim()
    );
}

fn main() {
    // Build the same input for both systems: ~1 MiB of generated sentences
    // with a known pattern sprinkled in.
    let mut generator = TextGenerator::new(42);
    let mut text = String::new();
    for i in 0..8_000 {
        if i % 23 == 0 {
            text.push_str("this record mentions the scintillant keyword\n");
        } else {
            text.push_str(&generator.sentence());
            text.push('\n');
        }
    }

    let topo = ClusterTopology::flat(8);
    let nodes: Vec<_> = topo.all_nodes().collect();

    let storage = BlobSeer::with_topology(
        BlobSeerConfig::default()
            .with_providers(8)
            .with_page_size(64 * 1024),
        &topo,
        &nodes,
    );
    let bsfs = BsfsFs::new(Bsfs::new(
        storage,
        BsfsConfig::default().with_block_size(64 * 1024),
    ));
    run_on(&bsfs, &topo, &text);

    let hdfs = HdfsFs::new(Hdfs::with_topology(
        HdfsConfig {
            chunk_size: 64 * 1024,
            datanodes: 8,
            replication: 2,
            seed: 1,
        },
        &topo,
        &nodes,
    ));
    run_on(&hdfs, &topo, &text);
}
