//! # dht — the metadata providers' distributed hash table
//!
//! BlobSeer keeps the information about which provider stores each page of
//! each blob version "in a Distributed HashTable, managed by several metadata
//! providers" (paper §III-A). This crate implements that substrate:
//!
//! * [`ring::HashRing`] — consistent hashing with virtual nodes, so that keys
//!   spread evenly and adding/removing a metadata provider only moves a small
//!   fraction of the keys;
//! * [`node::DhtNode`] — one metadata provider: a thread-safe key-value store
//!   plus a liveness flag for failure injection;
//! * [`Dht`] — the client view: replicated `put`/`get`/`remove` across the
//!   ring, fail-over on dead replicas, node join/leave with rebalancing.
//!
//! The DHT is *in-process*: nodes are objects, not sockets. This is
//! deliberate — the paper's experiments never stress the metadata network
//! path (metadata records are tiny compared to 64 MB data blocks); what
//! matters is the concurrency behaviour (many clients publishing segment-tree
//! nodes at once) and the decentralised failure model, both of which are
//! preserved.
//!
//! ```
//! use dht::{Dht, DhtConfig};
//! use bytes::Bytes;
//!
//! let dht = Dht::new(DhtConfig { nodes: 4, replication: 2, ..Default::default() });
//! dht.put(b"blob-1/v3/root", Bytes::from_static(b"tree-node")).unwrap();
//! assert_eq!(dht.get(b"blob-1/v3/root").unwrap(), Bytes::from_static(b"tree-node"));
//! ```

pub mod node;
pub mod ring;

pub use node::{DhtNode, DhtNodeId, NodeBackend};
pub use ring::HashRing;

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors surfaced by DHT operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhtError {
    /// No replica holding the key could be reached (all dead or none had it).
    NotFound { key: String },
    /// Fewer live nodes than the replication factor; the operation could not
    /// reach its durability target.
    NotEnoughReplicas { wanted: usize, available: usize },
    /// The DHT has no nodes at all.
    Empty,
    /// The referenced node id does not exist.
    UnknownNode(DhtNodeId),
}

impl fmt::Display for DhtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhtError::NotFound { key } => write!(f, "key not found in DHT: {key}"),
            DhtError::NotEnoughReplicas { wanted, available } => {
                write!(
                    f,
                    "not enough live replicas: wanted {wanted}, available {available}"
                )
            }
            DhtError::Empty => write!(f, "the DHT has no nodes"),
            DhtError::UnknownNode(id) => write!(f, "unknown DHT node {id:?}"),
        }
    }
}

impl std::error::Error for DhtError {}

/// Result alias for DHT operations.
pub type DhtResult<T> = Result<T, DhtError>;

/// Configuration of a [`Dht`].
#[derive(Debug, Clone)]
pub struct DhtConfig {
    /// Number of metadata provider nodes to create initially.
    pub nodes: usize,
    /// Number of replicas kept for every key (1 = no redundancy).
    pub replication: usize,
    /// Virtual nodes per physical node on the hash ring.
    pub virtual_nodes: usize,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            nodes: 4,
            replication: 2,
            virtual_nodes: 64,
        }
    }
}

/// Aggregate statistics over the DHT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DhtStats {
    /// Number of nodes (live and dead).
    pub nodes: usize,
    /// Number of live nodes.
    pub live_nodes: usize,
    /// Total key replicas stored across all nodes.
    pub total_entries: usize,
    /// Total bytes stored across all nodes (counting replication).
    pub total_bytes: u64,
}

struct DhtInner {
    ring: HashRing,
    nodes: HashMap<DhtNodeId, Arc<DhtNode>>,
    next_id: u64,
    replication: usize,
    virtual_nodes: usize,
    backend: NodeBackend,
}

/// Keys removed while one of their replicas was dead cannot be told apart
/// from sole-surviving copies when that replica revives — without a marker
/// the deleted value would silently resurrect. This set records removed keys
/// so [`Dht::revive`] can drop them; a re-`put` clears the marker.
#[derive(Default)]
struct Tombstones {
    keys: parking_lot::Mutex<std::collections::HashSet<Vec<u8>>>,
}

impl Tombstones {
    fn bury(&self, key: &[u8]) {
        self.keys.lock().insert(key.to_vec());
    }

    fn unbury(&self, key: &[u8]) {
        self.keys.lock().remove(key);
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.keys.lock().contains(key)
    }
}

/// The distributed hash table used by BlobSeer's metadata layer.
///
/// All methods are safe to call from many threads concurrently; the ring is
/// only write-locked by membership changes (join/leave/rebalance), never by
/// data operations.
///
/// Besides per-key `put`/`get`, the DHT offers [`Dht::put_many`] and
/// [`Dht::get_many`] batch operations that group keys by responsible node
/// under a single ring read-lock pass, contacting each node once — one
/// "round trip" — instead of once per key. The [`Dht::round_trips`] counter
/// tracks node contacts across all operations, which is what the bench
/// harness uses to report metadata round trips per committed version.
pub struct Dht {
    inner: RwLock<DhtInner>,
    tombstones: Tombstones,
    /// Client-to-node exchanges performed (one per node contacted, for both
    /// single-key and batch operations).
    round_trips: AtomicU64,
    /// The subset of `round_trips` spent on writes (put/put_many/remove).
    write_round_trips: AtomicU64,
    /// The subset of `round_trips` spent on reads (get/get_many).
    read_round_trips: AtomicU64,
}

impl Dht {
    /// Build a DHT with `config.nodes` initial nodes on the default
    /// (actor) node backend.
    pub fn new(config: DhtConfig) -> Self {
        Self::with_backend(config, NodeBackend::default())
    }

    /// Build a DHT whose nodes run on an explicit [`NodeBackend`]; nodes
    /// added later via [`Dht::join`] use the same backend.
    pub fn with_backend(config: DhtConfig, backend: NodeBackend) -> Self {
        assert!(
            config.replication >= 1,
            "replication factor must be at least 1"
        );
        let mut inner = DhtInner {
            ring: HashRing::new(config.virtual_nodes),
            nodes: HashMap::new(),
            next_id: 0,
            replication: config.replication,
            virtual_nodes: config.virtual_nodes,
            backend,
        };
        for _ in 0..config.nodes {
            let id = DhtNodeId(inner.next_id);
            inner.next_id += 1;
            inner.ring.add_node(id);
            inner
                .nodes
                .insert(id, Arc::new(DhtNode::with_backend(id, backend)));
        }
        Dht {
            inner: RwLock::new(inner),
            tombstones: Tombstones::default(),
            round_trips: AtomicU64::new(0),
            write_round_trips: AtomicU64::new(0),
            read_round_trips: AtomicU64::new(0),
        }
    }

    /// Number of client-to-node exchanges performed so far (reads and
    /// writes). Batch operations contact each responsible node once
    /// regardless of how many of the batch keys it holds, so this counter is
    /// what shrinks when callers batch.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// The write-side subset of [`Dht::round_trips`] (put/put_many/remove):
    /// the like-for-like figure to compare against one-put-per-key traffic.
    pub fn write_round_trips(&self) -> u64 {
        self.write_round_trips.load(Ordering::Relaxed)
    }

    /// The read-side subset of [`Dht::round_trips`] (get/get_many): the
    /// like-for-like figure to compare against one-get-per-key traffic.
    pub fn read_round_trips(&self) -> u64 {
        self.read_round_trips.load(Ordering::Relaxed)
    }

    fn count_read_round_trip(&self) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        self.read_round_trips.fetch_add(1, Ordering::Relaxed);
    }

    fn count_write_round_trip(&self) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        self.write_round_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// The replication factor this DHT was configured with.
    pub fn replication(&self) -> usize {
        self.inner.read().replication
    }

    /// Ids of all member nodes, sorted.
    pub fn node_ids(&self) -> Vec<DhtNodeId> {
        let mut ids: Vec<DhtNodeId> = self.inner.read().nodes.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Store `value` under `key` on the `replication` successor nodes of the
    /// key. Dead nodes are skipped; the write succeeds if at least one live
    /// replica accepted it, and reports [`DhtError::NotEnoughReplicas`] if
    /// none did.
    pub fn put(&self, key: &[u8], value: Bytes) -> DhtResult<()> {
        let inner = self.inner.read();
        if inner.nodes.is_empty() {
            return Err(DhtError::Empty);
        }
        let replicas = inner.ring.successors(key, inner.replication);
        // Unbury before storing: if a remove races this put, its tombstone
        // lands after ours is cleared and wins — "remove happened last" is a
        // legal outcome of the race, resurrecting deleted data is not.
        self.tombstones.unbury(key);
        let mut stored = 0;
        for id in &replicas {
            let node = &inner.nodes[id];
            if node.is_alive() {
                self.count_write_round_trip();
                node.put(key, value.clone());
                stored += 1;
            }
        }
        if stored == 0 {
            return Err(DhtError::NotEnoughReplicas {
                wanted: inner.replication,
                available: 0,
            });
        }
        Ok(())
    }

    /// Fetch the value for `key`, trying each replica in ring order and
    /// failing over past dead nodes.
    pub fn get(&self, key: &[u8]) -> DhtResult<Bytes> {
        let inner = self.inner.read();
        if inner.nodes.is_empty() {
            return Err(DhtError::Empty);
        }
        let replicas = inner.ring.successors(key, inner.replication);
        for id in &replicas {
            let node = &inner.nodes[id];
            if !node.is_alive() {
                continue;
            }
            self.count_read_round_trip();
            if let Some(v) = node.get(key) {
                return Ok(v);
            }
        }
        Err(DhtError::NotFound {
            key: String::from_utf8_lossy(key).into_owned(),
        })
    }

    /// Remove `key` from every replica that holds it. Returns true if at
    /// least one replica removed a value.
    pub fn remove(&self, key: &[u8]) -> DhtResult<bool> {
        let inner = self.inner.read();
        if inner.nodes.is_empty() {
            return Err(DhtError::Empty);
        }
        let replicas = inner.ring.successors(key, inner.replication);
        let mut removed = false;
        let mut any_dead = false;
        for id in &replicas {
            let node = &inner.nodes[id];
            if node.is_alive() {
                self.count_write_round_trip();
                removed |= node.remove(key);
            } else {
                any_dead = true;
            }
        }
        if any_dead {
            // A dead replica may still hold the key; the tombstone stops it
            // from resurrecting the value at revive/rebalance time. Removes
            // with every replica alive — the healthy-cluster common case —
            // leave no tombstone behind.
            self.tombstones.bury(key);
        }
        Ok(removed)
    }

    /// Store a batch of key-value pairs, grouping keys by responsible node
    /// under a single ring read-lock pass: each live node involved is
    /// contacted exactly once, carrying every entry it is responsible for.
    ///
    /// Equivalent to calling [`Dht::put`] for every entry (later entries win
    /// for duplicate keys), but with one round trip per *node* instead of one
    /// per key-replica. Reports [`DhtError::NotEnoughReplicas`] if any entry
    /// could not be stored on at least one live replica; entries that could
    /// be stored are stored even then.
    pub fn put_many(&self, entries: &[(Vec<u8>, Bytes)]) -> DhtResult<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let inner = self.inner.read();
        if inner.nodes.is_empty() {
            return Err(DhtError::Empty);
        }
        // Group entry indices by the node responsible for them.
        let mut per_node: HashMap<DhtNodeId, Vec<usize>> = HashMap::new();
        for (i, (key, _)) in entries.iter().enumerate() {
            // Unbury before storing, as in `put`: a racing remove must win.
            self.tombstones.unbury(key);
            for id in inner.ring.successors(key, inner.replication) {
                per_node.entry(id).or_default().push(i);
            }
        }
        let mut stored = vec![0usize; entries.len()];
        for (id, indices) in &per_node {
            let node = &inner.nodes[id];
            if !node.is_alive() {
                continue;
            }
            self.count_write_round_trip();
            for &i in indices {
                let (key, value) = &entries[i];
                node.put(key, value.clone());
                stored[i] += 1;
            }
        }
        if stored.contains(&0) {
            return Err(DhtError::NotEnoughReplicas {
                wanted: inner.replication,
                available: 0,
            });
        }
        Ok(())
    }

    /// Fetch a batch of keys, grouping them by responsible node under a
    /// single ring read-lock pass. Keys are first asked of their primary
    /// replicas (one round trip per distinct node), then the still-missing
    /// ones fail over rank by rank across the remaining replicas — the same
    /// fail-over order as [`Dht::get`], batched.
    ///
    /// Returns one `Option<Bytes>` per requested key, in order; `None` where
    /// no live replica held the key (where [`Dht::get`] would report
    /// [`DhtError::NotFound`]).
    pub fn get_many(&self, keys: &[Vec<u8>]) -> DhtResult<Vec<Option<Bytes>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let inner = self.inner.read();
        if inner.nodes.is_empty() {
            return Err(DhtError::Empty);
        }
        let replica_lists: Vec<Vec<DhtNodeId>> = keys
            .iter()
            .map(|k| inner.ring.successors(k, inner.replication))
            .collect();
        let mut out: Vec<Option<Bytes>> = vec![None; keys.len()];
        for rank in 0..inner.replication {
            let mut per_node: HashMap<DhtNodeId, Vec<usize>> = HashMap::new();
            for (i, replicas) in replica_lists.iter().enumerate() {
                if out[i].is_some() {
                    continue;
                }
                if let Some(id) = replicas.get(rank) {
                    if inner.nodes[id].is_alive() {
                        per_node.entry(*id).or_default().push(i);
                    }
                }
            }
            for (id, indices) in &per_node {
                let node = &inner.nodes[id];
                self.count_read_round_trip();
                for &i in indices {
                    out[i] = node.get(&keys[i]);
                }
            }
        }
        Ok(out)
    }

    /// Does any live replica hold `key`?
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_ok()
    }

    /// Add a new node to the ring and return its id. Call
    /// [`Dht::rebalance`] afterwards to move keys onto it.
    pub fn join(&self) -> DhtNodeId {
        let mut inner = self.inner.write();
        let id = DhtNodeId(inner.next_id);
        inner.next_id += 1;
        inner.ring.add_node(id);
        let backend = inner.backend;
        inner
            .nodes
            .insert(id, Arc::new(DhtNode::with_backend(id, backend)));
        id
    }

    /// Remove a node from the ring. Its keys remain on other replicas; call
    /// [`Dht::rebalance`] to restore the replication factor.
    pub fn leave(&self, id: DhtNodeId) -> DhtResult<()> {
        let mut inner = self.inner.write();
        if inner.nodes.remove(&id).is_none() {
            return Err(DhtError::UnknownNode(id));
        }
        inner.ring.remove_node(id);
        Ok(())
    }

    /// Mark a node dead (failure injection). Data operations skip it.
    pub fn kill(&self, id: DhtNodeId) -> DhtResult<()> {
        let inner = self.inner.read();
        match inner.nodes.get(&id) {
            Some(n) => {
                n.kill();
                Ok(())
            }
            None => Err(DhtError::UnknownNode(id)),
        }
    }

    /// Revive a previously killed node, reconciling its contents.
    ///
    /// Everything the node stored before the failure is suspect: while it was
    /// dead it missed overwrites, and any rebalance skipped it both as a
    /// source and as a destination. Without reconciliation a revived node
    /// that comes first in ring order serves its stale pre-failure values
    /// ahead of the fresh replicas. So, for every key the node holds:
    ///
    /// * if the node is still one of the key's replicas, the value is
    ///   refreshed from another live replica (when one holds the key);
    /// * if ring membership changed and the node is no longer a replica, the
    ///   entry is purged — unless no live replica holds the key, in which
    ///   case this may be the only surviving copy and it is kept for a later
    ///   [`Dht::rebalance`] to re-place;
    /// * keys removed while the node was dead carry a tombstone and are
    ///   dropped rather than resurrected.
    pub fn revive(&self, id: DhtNodeId) -> DhtResult<()> {
        // Write-lock the ring like every other membership change: data ops
        // must not observe (or overwrite) the node mid-reconciliation — a
        // concurrent put landing between our peer read and our refresh write
        // would be clobbered with the stale value we just fetched.
        let inner = self.inner.write();
        let node = match inner.nodes.get(&id) {
            Some(n) => n,
            None => return Err(DhtError::UnknownNode(id)),
        };
        for (key, _) in node.entries() {
            // A key removed while this node was dead must not resurrect.
            if self.tombstones.contains(&key) {
                node.remove(&key);
                continue;
            }
            let targets = inner.ring.successors(&key, inner.replication);
            let fresh = targets
                .iter()
                .filter(|t| **t != id)
                .filter_map(|t| inner.nodes.get(t))
                .filter(|n| n.is_alive())
                .find_map(|n| n.get(&key));
            if targets.contains(&id) {
                if let Some(value) = fresh {
                    node.put(&key, value);
                }
            } else if fresh.is_some() {
                node.remove(&key);
            }
        }
        // Only start serving once the contents are reconciled.
        node.revive();
        Ok(())
    }

    /// Re-distribute every key so that it lives exactly on its `replication`
    /// successors under the current ring. Used after joins/leaves. Dead nodes
    /// are skipped both as sources and as destinations; whatever they still
    /// hold is reconciled when [`Dht::revive`] brings them back.
    pub fn rebalance(&self) {
        let inner = self.inner.write();
        // Collect the union of all keys with one representative value.
        let mut all: HashMap<Vec<u8>, Bytes> = HashMap::new();
        for node in inner.nodes.values() {
            if !node.is_alive() {
                continue;
            }
            for (k, v) in node.entries() {
                // Tombstoned keys were removed; re-placing a lingering copy
                // would resurrect them.
                if self.tombstones.contains(&k) {
                    node.remove(&k);
                    continue;
                }
                all.entry(k).or_insert(v);
            }
        }
        // Re-place every key.
        for (key, value) in &all {
            let targets = inner.ring.successors(key, inner.replication);
            for (id, node) in &inner.nodes {
                if !node.is_alive() {
                    continue;
                }
                if targets.contains(id) {
                    node.put(key, value.clone());
                } else {
                    node.remove(key);
                }
            }
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DhtStats {
        let inner = self.inner.read();
        let mut s = DhtStats {
            nodes: inner.nodes.len(),
            ..Default::default()
        };
        for node in inner.nodes.values() {
            if node.is_alive() {
                s.live_nodes += 1;
            }
            s.total_entries += node.len();
            s.total_bytes += node.data_bytes();
        }
        s
    }

    /// The nodes that would hold `key` (for tests and load inspection).
    pub fn replicas_for(&self, key: &[u8]) -> Vec<DhtNodeId> {
        let inner = self.inner.read();
        inner.ring.successors(key, inner.replication)
    }

    /// Per-node entry counts, for load-balance inspection.
    pub fn load_per_node(&self) -> HashMap<DhtNodeId, usize> {
        let inner = self.inner.read();
        inner.nodes.iter().map(|(id, n)| (*id, n.len())).collect()
    }

    /// The number of virtual nodes per physical node on the ring.
    pub fn virtual_nodes(&self) -> usize {
        self.inner.read().virtual_nodes
    }

    /// Number of tombstones currently retained (keys removed while one of
    /// their replicas was dead, kept so the value cannot resurrect).
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.keys.lock().len()
    }

    /// Drop every tombstone whose key no node — live or dead — still holds a
    /// copy of. Once the last lingering replica of a removed key is gone
    /// there is nothing left to resurrect, so the marker is pure memory
    /// overhead; a bulk delete (version garbage collection) would otherwise
    /// grow the tombstone set without bound. Returns the number dropped.
    pub fn compact_tombstones(&self) -> usize {
        let inner = self.inner.read();
        let mut keys = self.tombstones.keys.lock();
        let before = keys.len();
        keys.retain(|key| inner.nodes.values().any(|n| n.get(key).is_some()));
        before - keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove_roundtrip() {
        let dht = Dht::new(DhtConfig::default());
        dht.put(b"k1", Bytes::from_static(b"v1")).unwrap();
        assert_eq!(dht.get(b"k1").unwrap(), Bytes::from_static(b"v1"));
        assert!(dht.contains(b"k1"));
        assert!(dht.remove(b"k1").unwrap());
        assert!(!dht.contains(b"k1"));
        assert!(matches!(dht.get(b"k1"), Err(DhtError::NotFound { .. })));
    }

    #[test]
    fn replication_places_copies_on_distinct_nodes() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 3,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"value")).unwrap();
        let replicas = dht.replicas_for(b"key");
        assert_eq!(replicas.len(), 3);
        let unique: std::collections::HashSet<_> = replicas.iter().collect();
        assert_eq!(unique.len(), 3, "replicas must be on distinct nodes");
        // Exactly the replica nodes hold the key.
        let load = dht.load_per_node();
        let holders: usize = load.values().sum();
        assert_eq!(holders, 3);
    }

    #[test]
    fn survives_killing_one_replica() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 3,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"value")).unwrap();
        let replicas = dht.replicas_for(b"key");
        dht.kill(replicas[0]).unwrap();
        assert_eq!(dht.get(b"key").unwrap(), Bytes::from_static(b"value"));
        dht.revive(replicas[0]).unwrap();
        assert_eq!(dht.get(b"key").unwrap(), Bytes::from_static(b"value"));
    }

    #[test]
    fn fails_when_all_replicas_dead() {
        let dht = Dht::new(DhtConfig {
            nodes: 3,
            replication: 2,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"value")).unwrap();
        for id in dht.replicas_for(b"key") {
            dht.kill(id).unwrap();
        }
        assert!(matches!(dht.get(b"key"), Err(DhtError::NotFound { .. })));
        // A put whose replicas are all dead reports the replica shortfall.
        let err = dht.put(b"key", Bytes::from_static(b"value2"));
        assert!(matches!(err, Err(DhtError::NotEnoughReplicas { .. })));
    }

    #[test]
    fn join_and_rebalance_preserve_all_keys() {
        let dht = Dht::new(DhtConfig {
            nodes: 3,
            replication: 2,
            ..Default::default()
        });
        for i in 0..200u32 {
            dht.put(
                format!("key-{i}").as_bytes(),
                Bytes::from(format!("value-{i}")),
            )
            .unwrap();
        }
        let new_node = dht.join();
        dht.rebalance();
        // All keys still readable.
        for i in 0..200u32 {
            assert_eq!(
                dht.get(format!("key-{i}").as_bytes()).unwrap(),
                Bytes::from(format!("value-{i}"))
            );
        }
        // The new node received some share of the keys.
        let load = dht.load_per_node();
        assert!(
            load[&new_node] > 0,
            "new node should hold keys after rebalance"
        );
    }

    #[test]
    fn leave_and_rebalance_restore_replication() {
        let dht = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            ..Default::default()
        });
        for i in 0..100u32 {
            dht.put(format!("key-{i}").as_bytes(), Bytes::from(vec![1u8; 10]))
                .unwrap();
        }
        let victim = dht.node_ids()[0];
        dht.leave(victim).unwrap();
        dht.rebalance();
        for i in 0..100u32 {
            assert!(dht.contains(format!("key-{i}").as_bytes()));
        }
        // Every key is now on exactly `replication` live nodes.
        let stats = dht.stats();
        assert_eq!(stats.total_entries, 100 * 2);
    }

    #[test]
    fn keys_spread_over_nodes() {
        let dht = Dht::new(DhtConfig {
            nodes: 8,
            replication: 1,
            virtual_nodes: 128,
        });
        for i in 0..2000u32 {
            dht.put(format!("page-{i}").as_bytes(), Bytes::from_static(b"x"))
                .unwrap();
        }
        let load = dht.load_per_node();
        let min = load.values().min().copied().unwrap();
        let max = load.values().max().copied().unwrap();
        // With 128 vnodes the imbalance should be modest.
        assert!(min > 0, "every node should hold at least one key");
        assert!(
            (max as f64) < (min as f64) * 4.0,
            "load imbalance too high: min={min}, max={max}"
        );
    }

    #[test]
    fn unknown_node_operations_error() {
        let dht = Dht::new(DhtConfig::default());
        let bogus = DhtNodeId(9999);
        assert!(matches!(dht.kill(bogus), Err(DhtError::UnknownNode(_))));
        assert!(matches!(dht.revive(bogus), Err(DhtError::UnknownNode(_))));
        assert!(matches!(dht.leave(bogus), Err(DhtError::UnknownNode(_))));
    }

    #[test]
    fn error_display() {
        assert!(DhtError::NotFound { key: "abc".into() }
            .to_string()
            .contains("abc"));
        assert!(DhtError::NotEnoughReplicas {
            wanted: 3,
            available: 1
        }
        .to_string()
        .contains('3'));
        assert!(DhtError::Empty.to_string().contains("no nodes"));
    }

    #[test]
    fn revived_node_serves_fresh_values_not_stale_ones() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 3,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"old")).unwrap();
        let replicas = dht.replicas_for(b"key");
        dht.kill(replicas[0]).unwrap();
        // Overwrite while the primary is down: only the live replicas see it.
        dht.put(b"key", Bytes::from_static(b"new")).unwrap();
        dht.rebalance();
        dht.revive(replicas[0]).unwrap();
        // Pre-fix the revived primary, first in ring order, answered with its
        // stale pre-failure value.
        assert_eq!(dht.get(b"key").unwrap(), Bytes::from_static(b"new"));
        // And the primary itself was refreshed, not bypassed.
        let stats = dht.stats();
        assert_eq!(stats.live_nodes, 5);
    }

    #[test]
    fn revive_purges_keys_the_node_no_longer_owns() {
        let dht = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            virtual_nodes: 64,
        });
        for i in 0..200u32 {
            dht.put(
                format!("key-{i}").as_bytes(),
                Bytes::from(format!("value-{i}")),
            )
            .unwrap();
        }
        let victim = dht.node_ids()[0];
        dht.kill(victim).unwrap();
        // Ring membership changes while the node is dead.
        dht.join();
        dht.join();
        dht.rebalance();
        dht.revive(victim).unwrap();
        // Every key is still readable with the right value...
        for i in 0..200u32 {
            assert_eq!(
                dht.get(format!("key-{i}").as_bytes()).unwrap(),
                Bytes::from(format!("value-{i}"))
            );
        }
        // ...and the revived node only holds keys it is (still) a replica
        // for: stale entries for re-homed keys were purged.
        let inner = dht.inner.read();
        let node = &inner.nodes[&victim];
        for (key, _) in node.entries() {
            assert!(
                inner
                    .ring
                    .successors(&key, inner.replication)
                    .contains(&victim),
                "revived node kept a key it no longer owns: {:?}",
                String::from_utf8_lossy(&key)
            );
        }
    }

    #[test]
    fn keys_removed_while_a_replica_was_dead_do_not_resurrect() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 3,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"value")).unwrap();
        let replicas = dht.replicas_for(b"key");
        dht.kill(replicas[0]).unwrap();
        // Removed while the primary is down: only live replicas drop it.
        assert!(dht.remove(b"key").unwrap());
        dht.revive(replicas[0]).unwrap();
        assert!(
            matches!(dht.get(b"key"), Err(DhtError::NotFound { .. })),
            "deleted key resurrected through the revived replica"
        );
        // A re-put after the removal clears the tombstone.
        dht.put(b"key", Bytes::from_static(b"again")).unwrap();
        dht.kill(replicas[0]).unwrap();
        dht.revive(replicas[0]).unwrap();
        assert_eq!(dht.get(b"key").unwrap(), Bytes::from_static(b"again"));
    }

    #[test]
    fn tombstone_compaction_keeps_only_markers_with_lingering_copies() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 3,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"value")).unwrap();
        let replicas = dht.replicas_for(b"key");
        dht.kill(replicas[0]).unwrap();
        assert!(dht.remove(b"key").unwrap());
        assert_eq!(dht.tombstone_count(), 1);
        // The dead replica still holds a copy: the marker must survive
        // compaction or the value would resurrect at revive time.
        assert_eq!(dht.compact_tombstones(), 0);
        assert_eq!(dht.tombstone_count(), 1);
        // Revive drops the lingering copy (guided by the tombstone); with no
        // copy left anywhere the marker is dead weight and compacts away.
        dht.revive(replicas[0]).unwrap();
        assert_eq!(dht.compact_tombstones(), 1);
        assert_eq!(dht.tombstone_count(), 0);
        assert!(matches!(dht.get(b"key"), Err(DhtError::NotFound { .. })));
    }

    #[test]
    fn put_many_and_get_many_roundtrip() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 2,
            ..Default::default()
        });
        let entries: Vec<(Vec<u8>, Bytes)> = (0..50u32)
            .map(|i| (format!("k{i}").into_bytes(), Bytes::from(format!("v{i}"))))
            .collect();
        dht.put_many(&entries).unwrap();
        for (k, v) in &entries {
            assert_eq!(&dht.get(k).unwrap(), v);
        }
        let keys: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
        let got = dht.get_many(&keys).unwrap();
        assert_eq!(got.len(), keys.len());
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v.as_ref().unwrap(), &entries[i].1);
        }
        // A missing key comes back as None, matching get()'s NotFound.
        assert_eq!(dht.get_many(&[b"missing".to_vec()]).unwrap(), vec![None]);
        // Empty batches are no-ops.
        dht.put_many(&[]).unwrap();
        assert!(dht.get_many(&[]).unwrap().is_empty());
    }

    #[test]
    fn batch_ops_use_fewer_round_trips_than_single_ops() {
        let single = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            ..Default::default()
        });
        let batched = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            ..Default::default()
        });
        let entries: Vec<(Vec<u8>, Bytes)> = (0..100u32)
            .map(|i| (format!("k{i}").into_bytes(), Bytes::from_static(b"v")))
            .collect();
        for (k, v) in &entries {
            single.put(k, v.clone()).unwrap();
        }
        batched.put_many(&entries).unwrap();
        // Single puts: one round trip per key-replica (100 * 2). The batch
        // contacts each of the 4 nodes at most once.
        assert_eq!(single.round_trips(), 200);
        assert!(batched.round_trips() <= 4);

        let keys: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
        let before = batched.round_trips();
        let got = batched.get_many(&keys).unwrap();
        assert!(got.iter().all(|v| v.is_some()));
        // All keys resolve at their primaries: at most one contact per node.
        assert!(batched.round_trips() - before <= 4);
    }

    #[test]
    fn read_and_write_round_trips_are_counted_separately() {
        let dht = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            ..Default::default()
        });
        dht.put(b"k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(dht.write_round_trips(), 2);
        assert_eq!(dht.read_round_trips(), 0);
        dht.get(b"k").unwrap();
        assert_eq!(dht.read_round_trips(), 1);
        let keys: Vec<Vec<u8>> = vec![b"k".to_vec()];
        dht.get_many(&keys).unwrap();
        assert_eq!(dht.read_round_trips(), 2);
        assert_eq!(
            dht.round_trips(),
            dht.read_round_trips() + dht.write_round_trips()
        );
    }

    #[test]
    fn put_many_with_all_replicas_dead_reports_shortfall() {
        let dht = Dht::new(DhtConfig {
            nodes: 3,
            replication: 2,
            ..Default::default()
        });
        for id in dht.node_ids() {
            dht.kill(id).unwrap();
        }
        let entries = vec![(b"k".to_vec(), Bytes::from_static(b"v"))];
        assert!(matches!(
            dht.put_many(&entries),
            Err(DhtError::NotEnoughReplicas { .. })
        ));
    }

    #[test]
    fn get_many_fails_over_dead_primaries() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 3,
            ..Default::default()
        });
        let entries: Vec<(Vec<u8>, Bytes)> = (0..60u32)
            .map(|i| (format!("k{i}").into_bytes(), Bytes::from(format!("v{i}"))))
            .collect();
        dht.put_many(&entries).unwrap();
        dht.kill(dht.node_ids()[0]).unwrap();
        let keys: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
        let got = dht.get_many(&keys).unwrap();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v.as_ref().unwrap(), &entries[i].1, "key {i} lost");
        }
    }

    #[test]
    fn concurrent_clients_publish_metadata() {
        let dht = std::sync::Arc::new(Dht::new(DhtConfig {
            nodes: 6,
            replication: 2,
            virtual_nodes: 64,
        }));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let dht = std::sync::Arc::clone(&dht);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        let key = format!("blob-{t}/v{i}/node");
                        dht.put(key.as_bytes(), Bytes::from(vec![t as u8; 32]))
                            .unwrap();
                        assert_eq!(dht.get(key.as_bytes()).unwrap()[0], t as u8);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = dht.stats();
        assert_eq!(stats.total_entries, 8 * 250 * 2);
    }
}
