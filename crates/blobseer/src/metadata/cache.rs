//! Client-side cache of segment-tree nodes.
//!
//! Tree nodes are *versioned and immutable*: a `NodeKey` names the node
//! created by exactly one write, and nothing ever changes the bytes stored
//! under it ("data is never overwritten", paper §III-A). A cached node can
//! therefore never go stale — there is no invalidation protocol, no
//! timestamps, no leases; the only policy decision is capacity. That is the
//! whole reason BlobSeer's metadata can be cached this aggressively, and it
//! is why the cache lives on the client side of the DHT rather than on the
//! metadata providers: every hit removes a client-to-provider round trip.
//!
//! The implementation is a sharded clock (second-chance) cache: the key hash
//! picks a shard, each shard is an independently locked ring of slots, and
//! eviction sweeps the ring clearing reference bits until it finds a slot
//! that was not touched since the last sweep. Clock keeps the hot upper
//! levels of the tree resident like LRU would, without having to reorder a
//! list on every hit — a hit is one hash lookup and one relaxed bit store.

use crate::metadata::{NodeKey, TreeNode};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards. A power of two so the shard index
/// is a mask of the key hash.
const SHARDS: usize = 16;

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetadataCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the DHT.
    pub misses: u64,
    /// Nodes inserted (both demand fills and write-path pre-warming).
    pub insertions: u64,
    /// Nodes evicted to make room.
    pub evictions: u64,
    /// Nodes currently resident.
    pub entries: u64,
    /// Read-ahead nodes that a later demand lookup actually used.
    pub prefetch_hits: u64,
    /// Read-ahead nodes evicted before any demand lookup touched them —
    /// speculation that cost a fetch and bought nothing.
    pub prefetch_wasted: u64,
}

impl MetadataCacheStats {
    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot {
    key: NodeKey,
    node: TreeNode,
    referenced: bool,
    /// Inserted by read-ahead and not yet touched by a demand lookup. The
    /// first demand hit clears the flag (a prefetch hit); eviction while the
    /// flag is still set means the prefetch was wasted.
    prefetched: bool,
}

struct Shard {
    /// Key -> index into `slots`.
    index: HashMap<NodeKey, usize>,
    slots: Vec<Slot>,
    /// Clock hand: next slot the eviction sweep examines.
    hand: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            index: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            hand: 0,
            capacity,
        }
    }

    /// Look a node up. The second return flags a first demand hit on a
    /// prefetched slot (the prefetch paid off).
    fn get(&mut self, key: &NodeKey) -> Option<(TreeNode, bool)> {
        let slot = *self.index.get(key)?;
        let slot = &mut self.slots[slot];
        slot.referenced = true;
        let first_demand_hit = slot.prefetched;
        slot.prefetched = false;
        Some((slot.node.clone(), first_demand_hit))
    }

    /// Insert or refresh a node. Returns `(evicted, wasted)`: whether an
    /// existing entry was evicted to make room, and whether that entry was a
    /// never-demanded prefetch.
    fn insert(&mut self, key: NodeKey, node: TreeNode, prefetched: bool) -> (bool, bool) {
        if let Some(&slot) = self.index.get(&key) {
            // Immutable nodes make a re-insert a no-op value-wise, but the
            // write may be pre-warming a slot that demand-filling put there
            // first; refresh the reference bit either way. A resident demand
            // entry never regresses to prefetched.
            self.slots[slot].referenced = true;
            self.slots[slot].node = node;
            self.slots[slot].prefetched &= prefetched;
            return (false, false);
        }
        if self.slots.len() < self.capacity {
            self.index.insert(key, self.slots.len());
            self.slots.push(Slot {
                key,
                node,
                referenced: true,
                prefetched,
            });
            return (false, false);
        }
        // Clock sweep: give every referenced slot a second chance.
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.referenced {
                slot.referenced = false;
                self.hand = (self.hand + 1) % self.capacity;
                continue;
            }
            let wasted = slot.prefetched;
            self.index.remove(&slot.key);
            self.index.insert(key, self.hand);
            *slot = Slot {
                key,
                node,
                referenced: true,
                prefetched,
            };
            self.hand = (self.hand + 1) % self.capacity;
            return (true, wasted);
        }
    }
}

/// A sharded, capacity-bounded cache of `NodeKey -> TreeNode`.
pub struct MetadataCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_wasted: AtomicU64,
}

impl MetadataCache {
    /// Create a cache holding at most `capacity` nodes (rounded up so every
    /// shard holds at least one).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        MetadataCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            prefetch_hits: AtomicU64::new(0),
            prefetch_wasted: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &NodeKey) -> &Mutex<Shard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (SHARDS - 1)]
    }

    /// Look a node up, counting the hit or miss (and the prefetch hit when
    /// this is the first demand touch of a read-ahead fill).
    pub fn get(&self, key: &NodeKey) -> Option<TreeNode> {
        let found = self.shard_of(key).lock().get(key);
        match found {
            Some((node, first_demand_hit)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if first_demand_hit {
                    self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(node)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) a node.
    pub fn insert(&self, key: NodeKey, node: TreeNode) {
        self.insert_with_origin(key, node, false);
    }

    /// Insert a node fetched by read-ahead: it counts as wasted if evicted
    /// before any demand lookup touches it.
    pub fn insert_prefetched(&self, key: NodeKey, node: TreeNode) {
        self.insert_with_origin(key, node, true);
    }

    fn insert_with_origin(&self, key: NodeKey, node: TreeNode, prefetched: bool) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        let (evicted, wasted) = self.shard_of(&key).lock().insert(key, node, prefetched);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        if wasted {
            self.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop every resident node, keeping the counters. This models a cold
    /// client (a reader on a node that never saw the writes), so the dropped
    /// entries count neither as evictions nor as wasted prefetches — no
    /// capacity decision was made.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.index.clear();
            shard.slots.clear();
            shard.hand = 0;
        }
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> MetadataCacheStats {
        MetadataCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().slots.len() as u64)
                .sum(),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            prefetch_wasted: self.prefetch_wasted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BlobId, ProviderId, Version};

    fn key(v: u64, o: u64) -> NodeKey {
        NodeKey {
            blob: BlobId(1),
            version: Version(v),
            offset: o,
            span: 1,
        }
    }

    fn leaf(page: u64) -> TreeNode {
        TreeNode::Leaf {
            page,
            providers: vec![ProviderId(page as u32)],
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = MetadataCache::new(8);
        assert!(cache.get(&key(1, 0)).is_none());
        cache.insert(key(1, 0), leaf(0));
        assert_eq!(cache.get(&key(1, 0)), Some(leaf(0)));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_is_bounded_and_eviction_counted() {
        let cache = MetadataCache::new(32);
        for i in 0..1000 {
            cache.insert(key(1, i), leaf(i));
        }
        let stats = cache.stats();
        // Each of the 16 shards holds at most ceil(32/16) = 2 slots.
        assert!(
            stats.entries <= 32,
            "entries {} exceed capacity",
            stats.entries
        );
        assert_eq!(stats.insertions, 1000);
        assert_eq!(stats.evictions, 1000 - stats.entries);
    }

    #[test]
    fn clock_sweep_evicts_unreferenced_slots_first() {
        // A single-shard-sized cache would be flaky to target through the
        // hash, so drive one shard directly.
        let mut shard = Shard::new(2);
        shard.insert(key(1, 0), leaf(0), false);
        shard.insert(key(1, 1), leaf(1), false);
        // The first over-capacity insert sweeps both reference bits clear,
        // evicts slot 0 and leaves slot 1's bit cleared.
        shard.insert(key(1, 2), leaf(2), false);
        assert!(shard.get(&key(1, 2)).is_some());
        assert!(shard.get(&key(1, 0)).is_none());
        assert_eq!(shard.slots.len(), 2);
        // Touch node 2 (done by the gets above) and insert again: node 1,
        // whose bit is still clear, goes; the referenced node 2 survives.
        shard.insert(key(1, 3), leaf(3), false);
        assert!(shard.get(&key(1, 2)).is_some());
        assert!(shard.get(&key(1, 1)).is_none());
    }

    #[test]
    fn prefetch_hits_and_waste_are_tracked() {
        let cache = MetadataCache::new(8);
        // A prefetched node's first demand touch is a prefetch hit; later
        // touches are plain hits.
        cache.insert_prefetched(key(1, 0), leaf(0));
        assert_eq!(cache.get(&key(1, 0)), Some(leaf(0)));
        assert_eq!(cache.get(&key(1, 0)), Some(leaf(0)));
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.prefetch_hits, 1);
        assert_eq!(stats.prefetch_wasted, 0);
        // A demand re-insert of a prefetched entry clears the flag.
        cache.insert_prefetched(key(1, 1), leaf(1));
        cache.insert(key(1, 1), leaf(1));
        assert_eq!(cache.get(&key(1, 1)), Some(leaf(1)));
        assert_eq!(cache.stats().prefetch_hits, 1);
    }

    #[test]
    fn evicting_an_untouched_prefetch_counts_as_waste() {
        // Drive one shard directly so eviction order is deterministic.
        let mut shard = Shard::new(1);
        let (_, wasted) = shard.insert(key(1, 0), leaf(0), true);
        assert!(!wasted);
        // Over-capacity insert: the sweep clears the reference bit first,
        // then evicts the never-demanded prefetch.
        let (evicted, wasted) = shard.insert(key(1, 1), leaf(1), false);
        assert!(evicted && wasted, "untouched prefetch must count as waste");
        // A demanded prefetch does not count as waste when later evicted.
        let mut shard = Shard::new(1);
        shard.insert(key(1, 2), leaf(2), true);
        assert!(shard.get(&key(1, 2)).is_some());
        let (evicted, wasted) = shard.insert(key(1, 3), leaf(3), false);
        assert!(evicted && !wasted);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = MetadataCache::new(8);
        cache.insert(key(1, 0), leaf(0));
        cache.insert_prefetched(key(1, 1), leaf(1));
        assert!(cache.get(&key(1, 0)).is_some());
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.evictions, 0, "a clear is not an eviction");
        assert_eq!(stats.prefetch_wasted, 0, "a clear is not waste");
        assert!(cache.get(&key(1, 0)).is_none());
        // The cache keeps working after a clear.
        cache.insert(key(1, 2), leaf(2));
        assert!(cache.get(&key(1, 2)).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_growing() {
        let cache = MetadataCache::new(8);
        cache.insert(key(1, 0), leaf(0));
        cache.insert(key(1, 0), leaf(0));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(MetadataCache::new(64));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..500 {
                        let k = key(t, i % 50);
                        cache.insert(k, leaf(i % 50));
                        let _ = cache.get(&k);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.insertions, 8 * 500);
        assert!(stats.entries <= 64);
    }
}
