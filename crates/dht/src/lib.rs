//! # dht — the metadata providers' distributed hash table
//!
//! BlobSeer keeps the information about which provider stores each page of
//! each blob version "in a Distributed HashTable, managed by several metadata
//! providers" (paper §III-A). This crate implements that substrate:
//!
//! * [`ring::HashRing`] — consistent hashing with virtual nodes, so that keys
//!   spread evenly and adding/removing a metadata provider only moves a small
//!   fraction of the keys;
//! * [`node::DhtNode`] — one metadata provider: an actor-backed key-value
//!   store plus a liveness flag for failure injection;
//! * [`Dht`] — the client view: replicated `put`/`get`/`remove` across the
//!   ring, fail-over on dead replicas, node join/leave with rebalancing, and
//!   the churn-tolerance layer: a heartbeat failure detector
//!   ([`Dht::heartbeat_tick`]) and an active re-replication pass
//!   ([`Dht::repair`]) that restores the replication factor after unannounced
//!   node deaths.
//!
//! The DHT is *in-process*: nodes are objects, not sockets. This is
//! deliberate — the paper's experiments never stress the metadata network
//! path (metadata records are tiny compared to 64 MB data blocks); what
//! matters is the concurrency behaviour (many clients publishing segment-tree
//! nodes at once) and the decentralised failure model, both of which are
//! preserved.
//!
//! ## Failure model
//!
//! A dead node *refuses* operations rather than being skipped by fiat: the
//! front-end attempts a replica and discovers the death when the attempt
//! returns [`node::NodeDown`], exactly as a remote client discovers a crashed
//! peer by a failed RPC. Writes walk clockwise past refused replicas until
//! the replication factor is met (or at least one copy lands); reads fail
//! over the same way. The [`simcluster::detector::FailureDetector`] attached
//! via [`Dht::enable_failure_detection`] turns missed heartbeats into
//! suspicion on a deterministic clock, and [`Dht::repair`] re-replicates
//! every under-replicated key onto its first live successors — so churn
//! (kills and joins without any explicit `revive`) converges back to full
//! replication.
//!
//! ```
//! use dht::{Dht, DhtConfig};
//! use bytes::Bytes;
//!
//! let dht = Dht::new(DhtConfig { nodes: 4, replication: 2, ..Default::default() });
//! dht.put(b"blob-1/v3/root", Bytes::from_static(b"tree-node")).unwrap();
//! assert_eq!(dht.get(b"blob-1/v3/root").unwrap(), Bytes::from_static(b"tree-node"));
//! ```

pub mod node;
pub mod ring;

pub use node::{DhtNode, DhtNodeId, NodeDown, NodeResult};
pub use ring::HashRing;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use simcluster::clock::Clock;
use simcluster::detector::{DetectorConfig, FailureDetector};
use simcluster::topology::NodeId;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wire::{Direction, Transport, MSG_OVERHEAD};

/// Errors surfaced by DHT operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhtError {
    /// No replica holding the key could be reached (all dead or none had it).
    NotFound { key: String },
    /// Fewer live nodes than the replication factor; the operation could not
    /// reach its durability target.
    NotEnoughReplicas { wanted: usize, available: usize },
    /// The DHT has no nodes at all.
    Empty,
    /// The referenced node id does not exist.
    UnknownNode(DhtNodeId),
}

impl fmt::Display for DhtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhtError::NotFound { key } => write!(f, "key not found in DHT: {key}"),
            DhtError::NotEnoughReplicas { wanted, available } => {
                write!(
                    f,
                    "not enough live replicas: wanted {wanted}, available {available}"
                )
            }
            DhtError::Empty => write!(f, "the DHT has no nodes"),
            DhtError::UnknownNode(id) => write!(f, "unknown DHT node {id:?}"),
        }
    }
}

impl std::error::Error for DhtError {}

/// Result alias for DHT operations.
pub type DhtResult<T> = Result<T, DhtError>;

/// Configuration of a [`Dht`].
#[derive(Debug, Clone)]
pub struct DhtConfig {
    /// Number of metadata provider nodes to create initially.
    pub nodes: usize,
    /// Number of replicas kept for every key (1 = no redundancy).
    pub replication: usize,
    /// Virtual nodes per physical node on the hash ring.
    pub virtual_nodes: usize,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            nodes: 4,
            replication: 2,
            virtual_nodes: 64,
        }
    }
}

/// Aggregate statistics over the DHT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DhtStats {
    /// Number of nodes (live and dead).
    pub nodes: usize,
    /// Number of live nodes.
    pub live_nodes: usize,
    /// Total key replicas stored across all nodes.
    pub total_entries: usize,
    /// Total bytes stored across all nodes (counting replication).
    pub total_bytes: u64,
    /// Keys still below the replication factor after the most recent
    /// [`Dht::repair`] pass (0 until a repair has run).
    pub under_replicated: usize,
    /// Repair passes completed.
    pub repair_runs: u64,
    /// Replica copies created by repair passes (cumulative).
    pub repaired_entries: u64,
    /// Node failures discovered by the heartbeat detector (0 when no
    /// detector is attached).
    pub failures_detected: u64,
    /// Nodes the detector currently suspects dead.
    pub suspected_nodes: usize,
}

/// Client-side retry policy for data operations.
///
/// Under churn an operation can catch the ring at its worst moment — every
/// replica of a key dead, with the repair loop about to restore them. Rather
/// than surfacing that transient as a hard error, the front-end retries the
/// whole operation (which re-runs the replica fail-over walk) up to
/// `attempts` times, sleeping an exponentially growing backoff between
/// tries. The default is a single attempt: no retries, no behaviour change
/// for deployments that do not opt in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries per operation (1 = fail fast).
    pub attempts: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub backoff: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff: std::time::Duration::from_millis(0),
        }
    }
}

/// What one [`Dht::repair`] pass found and fixed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DhtRepairReport {
    /// Nodes probed with a heartbeat at the start of the pass.
    pub probed_nodes: usize,
    /// Nodes that failed the probe.
    pub dead_nodes: usize,
    /// Distinct keys seen on live nodes.
    pub scanned_keys: usize,
    /// Keys found below the replication factor on live targets.
    pub under_replicated: usize,
    /// Replica copies created to restore the factor.
    pub repaired_copies: usize,
    /// Misplaced live copies dropped after the factor was restored.
    pub strays_removed: usize,
    /// Lingering copies of removed (tombstoned) keys dropped.
    pub tombstones_enforced: usize,
    /// Keys still below the factor when the pass ended (not enough live
    /// nodes to hold every replica).
    pub still_under_replicated: usize,
}

struct DhtInner {
    ring: HashRing,
    nodes: HashMap<DhtNodeId, Arc<DhtNode>>,
    next_id: u64,
    replication: usize,
    virtual_nodes: usize,
}

/// Keys removed while one of their replicas was dead cannot be told apart
/// from sole-surviving copies when that replica revives — without a marker
/// the deleted value would silently resurrect. This set records removed keys
/// so [`Dht::revive`] and [`Dht::repair`] can drop them; a re-`put` clears
/// the marker.
#[derive(Default)]
struct Tombstones {
    keys: Mutex<HashSet<Vec<u8>>>,
}

impl Tombstones {
    fn bury(&self, key: &[u8]) {
        self.keys.lock().insert(key.to_vec());
    }

    fn unbury(&self, key: &[u8]) {
        self.keys.lock().remove(key);
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.keys.lock().contains(key)
    }
}

/// The transport attachment for a [`Dht`]: where each metadata provider
/// lives in the cluster and which wire its exchanges are charged on.
struct DhtWire {
    transport: Arc<dyn Transport>,
    /// Cluster placement of the metadata providers: DHT node `i` lives on
    /// `placement[i % placement.len()]`.
    placement: Vec<NodeId>,
    /// Fallback source node for exchanges issued from threads that did not
    /// pin one via [`wire::source_guard`].
    home: NodeId,
}

impl DhtWire {
    fn destination(&self, id: DhtNodeId) -> NodeId {
        self.placement[id.0 as usize % self.placement.len()]
    }
}

/// The distributed hash table used by BlobSeer's metadata layer.
///
/// All methods are safe to call from many threads concurrently; the ring is
/// only write-locked by membership changes (join/leave/rebalance/repair),
/// never by data operations.
///
/// Besides per-key `put`/`get`, the DHT offers [`Dht::put_many`] and
/// [`Dht::get_many`] batch operations that group keys by responsible node
/// under a single ring read-lock pass, contacting each node once — one
/// "round trip" — instead of once per key. The [`Dht::round_trips`] counter
/// tracks node contacts across all operations, which is what the bench
/// harness uses to report metadata round trips per committed version.
pub struct Dht {
    inner: RwLock<DhtInner>,
    tombstones: Tombstones,
    /// Heartbeat failure detector, attached by
    /// [`Dht::enable_failure_detection`]. Optional: a bare DHT (unit tests,
    /// benches that do not exercise churn) runs without one.
    detector: Mutex<Option<Arc<FailureDetector<DhtNodeId>>>>,
    /// Client-to-node exchanges performed (one per node contacted, for both
    /// single-key and batch operations), with bytes per direction. Repair and
    /// heartbeat traffic is control-plane and intentionally *not* counted
    /// here. The legacy `round_trips` accessors read from this set.
    counters: wire::Counters,
    /// When attached, every client-to-node exchange is also charged on this
    /// transport (simulated latency + bandwidth). `None` keeps the historic
    /// free-wire behavior.
    wire: RwLock<Option<DhtWire>>,
    /// Repair passes completed.
    repair_runs: AtomicU64,
    /// Replica copies created by repair passes.
    repaired_entries: AtomicU64,
    /// Keys below the replication factor at the end of the last repair.
    under_replicated_last: AtomicU64,
    /// Client-side retry policy for data operations.
    retry: Mutex<RetryPolicy>,
    /// Operation retries performed under the policy.
    retries: AtomicU64,
}

impl Dht {
    /// Build a DHT with `config.nodes` initial nodes.
    pub fn new(config: DhtConfig) -> Self {
        assert!(
            config.replication >= 1,
            "replication factor must be at least 1"
        );
        let mut inner = DhtInner {
            ring: HashRing::new(config.virtual_nodes),
            nodes: HashMap::new(),
            next_id: 0,
            replication: config.replication,
            virtual_nodes: config.virtual_nodes,
        };
        for _ in 0..config.nodes {
            let id = DhtNodeId(inner.next_id);
            inner.next_id += 1;
            inner.ring.add_node(id);
            inner.nodes.insert(id, Arc::new(DhtNode::new(id)));
        }
        Dht {
            inner: RwLock::new(inner),
            tombstones: Tombstones::default(),
            detector: Mutex::new(None),
            counters: wire::Counters::new(),
            wire: RwLock::new(None),
            repair_runs: AtomicU64::new(0),
            repaired_entries: AtomicU64::new(0),
            under_replicated_last: AtomicU64::new(0),
            retry: Mutex::new(RetryPolicy::default()),
            retries: AtomicU64::new(0),
        }
    }

    /// Set the client-side retry policy for data operations.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        assert!(policy.attempts >= 1, "at least one attempt is required");
        *self.retry.lock() = policy;
    }

    /// The current retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry.lock()
    }

    /// Operation retries performed so far under the policy.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Run `op` under the retry policy: transient outcomes (no replica
    /// reachable, key unreadable) are retried with exponential backoff,
    /// giving concurrent recovery — a revive, a repair pass — a window to
    /// land; structural errors ([`DhtError::Empty`],
    /// [`DhtError::UnknownNode`]) fail immediately.
    fn with_retry<T>(&self, mut op: impl FnMut() -> DhtResult<T>) -> DhtResult<T> {
        let policy = self.retry_policy();
        let mut backoff = policy.backoff;
        let mut last = None;
        for attempt in 0..policy.attempts {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
            }
            match op() {
                Ok(v) => return Ok(v),
                Err(e @ (DhtError::Empty | DhtError::UnknownNode(_))) => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Number of client-to-node exchanges performed so far (reads and
    /// writes). Batch operations contact each responsible node once
    /// regardless of how many of the batch keys it holds, so this counter is
    /// what shrinks when callers batch.
    pub fn round_trips(&self) -> u64 {
        self.counters.messages()
    }

    /// The write-side subset of [`Dht::round_trips`] (put/put_many/remove):
    /// the like-for-like figure to compare against one-put-per-key traffic.
    pub fn write_round_trips(&self) -> u64 {
        self.counters.write_messages()
    }

    /// The read-side subset of [`Dht::round_trips`] (get/get_many): the
    /// like-for-like figure to compare against one-get-per-key traffic.
    pub fn read_round_trips(&self) -> u64 {
        self.counters.read_messages()
    }

    /// The full wire accounting for this DHT's client-to-node traffic
    /// (messages and bytes per direction, in the shared schema).
    pub fn wire_counters(&self) -> &wire::Counters {
        &self.counters
    }

    /// Charge every future client-to-node exchange on `transport`, placing
    /// metadata provider `i` on cluster node `placement[i % len]`. Exchanges
    /// issued from a thread without a [`wire::source_guard`] are charged as
    /// coming from `home`.
    pub fn attach_wire(&self, transport: Arc<dyn Transport>, placement: Vec<NodeId>, home: NodeId) {
        assert!(
            !placement.is_empty(),
            "placement must name at least one node"
        );
        *self.wire.write() = Some(DhtWire {
            transport,
            placement,
            home,
        });
    }

    /// Record one exchange with node `id` and, when a wire is attached,
    /// charge its simulated cost.
    fn charge(&self, id: DhtNodeId, dir: Direction, bytes_out: u64, bytes_in: u64) {
        self.counters.record(dir, bytes_out, bytes_in);
        if let Some(w) = self.wire.read().as_ref() {
            let src = wire::current_source().unwrap_or(w.home);
            w.transport
                .exchange(src, w.destination(id), dir, bytes_out, bytes_in);
        }
    }

    fn charge_read(&self, id: DhtNodeId, bytes_out: u64, bytes_in: u64) {
        self.charge(id, Direction::Read, bytes_out, bytes_in);
    }

    fn charge_write(&self, id: DhtNodeId, bytes_out: u64, bytes_in: u64) {
        self.charge(id, Direction::Write, bytes_out, bytes_in);
    }

    /// The replication factor this DHT was configured with.
    pub fn replication(&self) -> usize {
        self.inner.read().replication
    }

    /// Ids of all member nodes, sorted.
    pub fn node_ids(&self) -> Vec<DhtNodeId> {
        let mut ids: Vec<DhtNodeId> = self.inner.read().nodes.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Report a refused data operation to the detector (when attached): a
    /// failed exchange is heartbeat evidence too, so the data plane
    /// contributes to discovery between probe rounds.
    fn note_node_down(&self, id: DhtNodeId) {
        if let Some(det) = self.detector.lock().clone() {
            det.observe(id, false);
        }
    }

    /// Attempt one replica write; false when the node refused (dead).
    fn try_put_on(&self, inner: &DhtInner, id: DhtNodeId, key: &[u8], value: &Bytes) -> bool {
        let node = &inner.nodes[&id];
        self.charge_write(
            id,
            key.len() as u64 + value.len() as u64 + MSG_OVERHEAD,
            MSG_OVERHEAD,
        );
        match node.put(key, value.clone()) {
            Ok(()) => true,
            Err(NodeDown) => {
                self.note_node_down(id);
                false
            }
        }
    }

    /// Store `value` under `key`, walking the key's successors clockwise and
    /// skipping past replicas that refuse (dead), until `replication` copies
    /// are stored or the ring is exhausted. With every primary replica alive
    /// this stores on exactly the `replication` successors; under failures
    /// the write degrades gracefully — it lands wherever it can, and the
    /// repair pass later moves copies back to the proper successors. Reports
    /// [`DhtError::NotEnoughReplicas`] only when *no* node accepted.
    ///
    /// Retries the walk under the [`RetryPolicy`] when no node accepts.
    pub fn put(&self, key: &[u8], value: Bytes) -> DhtResult<()> {
        self.with_retry(|| self.put_once(key, &value))
    }

    fn put_once(&self, key: &[u8], value: &Bytes) -> DhtResult<()> {
        let inner = self.inner.read();
        if inner.nodes.is_empty() {
            return Err(DhtError::Empty);
        }
        // Unbury before storing: if a remove races this put, its tombstone
        // lands after ours is cleared and wins — "remove happened last" is a
        // legal outcome of the race, resurrecting deleted data is not.
        self.tombstones.unbury(key);
        let mut stored = 0;
        for id in inner.ring.successors(key, inner.nodes.len()) {
            if self.try_put_on(&inner, id, key, value) {
                stored += 1;
                if stored == inner.replication {
                    break;
                }
            }
        }
        if stored == 0 {
            return Err(DhtError::NotEnoughReplicas {
                wanted: inner.replication,
                available: 0,
            });
        }
        Ok(())
    }

    /// Fetch the value for `key`, trying each replica in ring order and
    /// failing over past dead nodes. A miss is declared once `replication`
    /// live replicas answered "not here"; if any replica refused along the
    /// way the walk continues past the replica set, because a write racing
    /// that death may have failed over clockwise.
    ///
    /// Retries the walk under the [`RetryPolicy`] — but only when the miss
    /// followed a dead-node refusal, i.e. a dead replica may hold the copy
    /// and a repair pass may restore it. A miss with every replica answering
    /// is authoritative and never retried.
    pub fn get(&self, key: &[u8]) -> DhtResult<Bytes> {
        let policy = self.retry_policy();
        let mut backoff = policy.backoff;
        let mut attempt = 0;
        loop {
            let (result, transient) = self.get_once(key)?;
            attempt += 1;
            match result {
                Some(v) => return Ok(v),
                None if transient && attempt < policy.attempts => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff *= 2;
                    }
                }
                None => {
                    return Err(DhtError::NotFound {
                        key: String::from_utf8_lossy(key).into_owned(),
                    })
                }
            }
        }
    }

    /// One fail-over walk. The second return value marks a miss as
    /// transient (a replica refused along the way).
    fn get_once(&self, key: &[u8]) -> DhtResult<(Option<Bytes>, bool)> {
        let inner = self.inner.read();
        if inner.nodes.is_empty() {
            return Err(DhtError::Empty);
        }
        let mut live_misses = 0;
        let mut saw_down = false;
        for id in inner.ring.successors(key, inner.nodes.len()) {
            let resp = inner.nodes[&id].get(key);
            let resp_bytes = match &resp {
                Ok(Some(v)) => v.len() as u64,
                _ => 0,
            };
            self.charge_read(
                id,
                key.len() as u64 + MSG_OVERHEAD,
                resp_bytes + MSG_OVERHEAD,
            );
            match resp {
                Ok(Some(v)) => return Ok((Some(v), false)),
                Ok(None) => {
                    live_misses += 1;
                    if live_misses >= inner.replication && !saw_down {
                        // Every node that could hold a copy answered.
                        break;
                    }
                }
                Err(NodeDown) => {
                    saw_down = true;
                    self.note_node_down(id);
                }
            }
        }
        Ok((None, saw_down))
    }

    /// Remove `key` from every replica that holds it. Returns true if at
    /// least one replica removed a value.
    pub fn remove(&self, key: &[u8]) -> DhtResult<bool> {
        let inner = self.inner.read();
        if inner.nodes.is_empty() {
            return Err(DhtError::Empty);
        }
        let replicas = inner.ring.successors(key, inner.replication);
        let mut removed = false;
        let mut any_down = false;
        for id in &replicas {
            let node = &inner.nodes[id];
            self.charge_write(*id, key.len() as u64 + MSG_OVERHEAD, MSG_OVERHEAD);
            match node.remove(key) {
                Ok(r) => removed |= r,
                Err(NodeDown) => {
                    any_down = true;
                    self.note_node_down(*id);
                }
            }
        }
        if any_down {
            // A dead replica may still hold the key; the tombstone stops it
            // from resurrecting the value at revive/repair time. Removes
            // with every replica alive — the healthy-cluster common case —
            // leave no tombstone behind.
            self.tombstones.bury(key);
            if !removed {
                // The copy may have failed over past the replica set when it
                // was written; chase it clockwise.
                for id in inner
                    .ring
                    .successors(key, inner.nodes.len())
                    .into_iter()
                    .skip(replicas.len())
                {
                    self.charge_write(id, key.len() as u64 + MSG_OVERHEAD, MSG_OVERHEAD);
                    if let Ok(r) = inner.nodes[&id].remove(key) {
                        if r {
                            removed = true;
                            break;
                        }
                    }
                }
            }
        }
        Ok(removed)
    }

    /// Store a batch of key-value pairs, grouping keys by responsible node
    /// under a single ring read-lock pass: each node involved is contacted
    /// once, carrying every entry it is responsible for.
    ///
    /// Equivalent to calling [`Dht::put`] for every entry (later entries win
    /// for duplicate keys), but with one round trip per *node* instead of one
    /// per key-replica. A node dying mid-batch only affects the entries it
    /// was responsible for: those fail over individually past the dead
    /// replica until the replication factor is met. Reports
    /// [`DhtError::NotEnoughReplicas`] if some entry could not be stored on
    /// at least one node; entries that could be stored are stored even then.
    ///
    /// Retries under the [`RetryPolicy`]: a retried batch re-puts every
    /// entry, which is idempotent (later writes of the same key win).
    ///
    /// Keys are borrowed (`impl AsRef<[u8]>`), so callers holding slices or
    /// owned buffers alike can batch without cloning.
    pub fn put_many<K: AsRef<[u8]>>(&self, entries: &[(K, Bytes)]) -> DhtResult<()> {
        self.with_retry(|| self.put_many_once(entries))
    }

    fn put_many_once<K: AsRef<[u8]>>(&self, entries: &[(K, Bytes)]) -> DhtResult<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let inner = self.inner.read();
        if inner.nodes.is_empty() {
            return Err(DhtError::Empty);
        }
        // Group entry indices by the node responsible for them. BTreeMap so
        // batch groups are visited in deterministic (node-id) order.
        let mut per_node: BTreeMap<DhtNodeId, Vec<usize>> = BTreeMap::new();
        for (i, (key, _)) in entries.iter().enumerate() {
            // Unbury before storing, as in `put`: a racing remove must win.
            self.tombstones.unbury(key.as_ref());
            for id in inner.ring.successors(key.as_ref(), inner.replication) {
                per_node.entry(id).or_default().push(i);
            }
        }
        let mut stored = vec![0usize; entries.len()];
        for (id, indices) in &per_node {
            let node = &inner.nodes[id];
            // One message per node, carrying every entry of its group. The
            // bytes cross the wire even if the node turns out to be dead.
            let group_bytes: u64 = indices
                .iter()
                .map(|&i| entries[i].0.as_ref().len() as u64 + entries[i].1.len() as u64)
                .sum();
            self.charge_write(*id, group_bytes + MSG_OVERHEAD, MSG_OVERHEAD);
            for &i in indices {
                let (key, value) = &entries[i];
                match node.put(key.as_ref(), value.clone()) {
                    Ok(()) => stored[i] += 1,
                    Err(NodeDown) => {
                        // The node is gone; every entry of this group would
                        // be refused the same way. Leave them for the
                        // per-entry fail-over pass below.
                        self.note_node_down(*id);
                        break;
                    }
                }
            }
        }
        // Mid-batch death hardening: entries short of the replication factor
        // (their group's node died before or during the batch) fail over
        // individually, clockwise past the replica set.
        for (i, count) in stored.iter_mut().enumerate() {
            if *count >= inner.replication {
                continue;
            }
            let (key, value) = &entries[i];
            for id in inner
                .ring
                .successors(key.as_ref(), inner.nodes.len())
                .into_iter()
                .skip(inner.replication)
            {
                if self.try_put_on(&inner, id, key.as_ref(), value) {
                    *count += 1;
                    if *count >= inner.replication {
                        break;
                    }
                }
            }
        }
        if stored.contains(&0) {
            return Err(DhtError::NotEnoughReplicas {
                wanted: inner.replication,
                available: 0,
            });
        }
        Ok(())
    }

    /// Fetch a batch of keys, grouping them by responsible node under a
    /// single ring read-lock pass. Keys are first asked of their primary
    /// replicas (one round trip per distinct node), then the still-missing
    /// ones fail over rank by rank across the remaining replicas — the same
    /// fail-over order as [`Dht::get`], batched. Keys whose replica answered
    /// with a refusal (died mid-batch) finally fail over individually past
    /// the replica set.
    ///
    /// Returns one `Option<Bytes>` per requested key, in order; `None` where
    /// no live replica held the key (where [`Dht::get`] would report
    /// [`DhtError::NotFound`]).
    ///
    /// Retries under the [`RetryPolicy`] — but only while some key came
    /// back `None` *after* a dead-node refusal, i.e. the key may be held by
    /// a dead replica awaiting repair. A miss with every replica answering
    /// is authoritative and never retried.
    pub fn get_many<K: AsRef<[u8]>>(&self, keys: &[K]) -> DhtResult<Vec<Option<Bytes>>> {
        let policy = self.retry_policy();
        let mut backoff = policy.backoff;
        let mut attempt = 0;
        loop {
            let (out, transient_miss) = self.get_many_once(keys)?;
            attempt += 1;
            if !transient_miss || attempt >= policy.attempts {
                return Ok(out);
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
                backoff *= 2;
            }
        }
    }

    /// One batched lookup pass. The second return value reports whether any
    /// requested key is still missing after a refused exchange — the
    /// transient the retry wrapper waits out.
    fn get_many_once<K: AsRef<[u8]>>(&self, keys: &[K]) -> DhtResult<(Vec<Option<Bytes>>, bool)> {
        if keys.is_empty() {
            return Ok((Vec::new(), false));
        }
        let inner = self.inner.read();
        if inner.nodes.is_empty() {
            return Err(DhtError::Empty);
        }
        let replica_lists: Vec<Vec<DhtNodeId>> = keys
            .iter()
            .map(|k| inner.ring.successors(k.as_ref(), inner.replication))
            .collect();
        let mut out: Vec<Option<Bytes>> = vec![None; keys.len()];
        let mut saw_down = vec![false; keys.len()];
        let mut down_nodes: HashSet<DhtNodeId> = HashSet::new();
        for rank in 0..inner.replication {
            let mut per_node: BTreeMap<DhtNodeId, Vec<usize>> = BTreeMap::new();
            for (i, replicas) in replica_lists.iter().enumerate() {
                if out[i].is_some() {
                    continue;
                }
                if let Some(id) = replicas.get(rank) {
                    if down_nodes.contains(id) {
                        // Known-dead from an earlier group in this batch:
                        // skip the doomed exchange, remember to fail over.
                        saw_down[i] = true;
                    } else {
                        per_node.entry(*id).or_default().push(i);
                    }
                }
            }
            for (id, indices) in &per_node {
                let node = &inner.nodes[id];
                // One message per node: the request carries the group's
                // keys, the response whatever values the node held.
                let mut resp_bytes = 0u64;
                for &i in indices {
                    if down_nodes.contains(id) {
                        saw_down[i] = true;
                        continue;
                    }
                    match node.get(keys[i].as_ref()) {
                        Ok(v) => {
                            resp_bytes += v.as_ref().map_or(0, |b| b.len() as u64);
                            out[i] = v;
                        }
                        Err(NodeDown) => {
                            down_nodes.insert(*id);
                            saw_down[i] = true;
                            self.note_node_down(*id);
                        }
                    }
                }
                let req_bytes: u64 = indices.iter().map(|&i| keys[i].as_ref().len() as u64).sum();
                self.charge_read(*id, req_bytes + MSG_OVERHEAD, resp_bytes + MSG_OVERHEAD);
            }
        }
        // Keys that saw a refusal may have failed over past the replica set
        // at write time; chase them clockwise, individually.
        let mut transient_miss = false;
        for (i, missing) in out.iter_mut().enumerate() {
            if missing.is_some() || !saw_down[i] {
                continue;
            }
            for id in inner
                .ring
                .successors(keys[i].as_ref(), inner.nodes.len())
                .into_iter()
                .skip(replica_lists[i].len())
            {
                let resp = inner.nodes[&id].get(keys[i].as_ref());
                let resp_bytes = match &resp {
                    Ok(Some(v)) => v.len() as u64,
                    _ => 0,
                };
                self.charge_read(
                    id,
                    keys[i].as_ref().len() as u64 + MSG_OVERHEAD,
                    resp_bytes + MSG_OVERHEAD,
                );
                if let Ok(Some(v)) = resp {
                    *missing = Some(v);
                    break;
                }
            }
            transient_miss |= missing.is_none();
        }
        Ok((out, transient_miss))
    }

    /// Does any live replica hold `key`?
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_ok()
    }

    /// Add a new node to the ring and return its id. Call [`Dht::rebalance`]
    /// (or let the [`Dht::repair`] loop run) to move keys onto it.
    pub fn join(&self) -> DhtNodeId {
        let mut inner = self.inner.write();
        let id = DhtNodeId(inner.next_id);
        inner.next_id += 1;
        inner.ring.add_node(id);
        inner.nodes.insert(id, Arc::new(DhtNode::new(id)));
        if let Some(det) = self.detector.lock().clone() {
            det.register(id);
        }
        id
    }

    /// Remove a node from the ring. Its keys remain on other replicas; call
    /// [`Dht::rebalance`] or let [`Dht::repair`] restore the replication
    /// factor.
    pub fn leave(&self, id: DhtNodeId) -> DhtResult<()> {
        let mut inner = self.inner.write();
        if inner.nodes.remove(&id).is_none() {
            return Err(DhtError::UnknownNode(id));
        }
        inner.ring.remove_node(id);
        if let Some(det) = self.detector.lock().clone() {
            det.forget(id);
        }
        Ok(())
    }

    /// Crash a node (failure injection). Nothing else is told: the front-end
    /// discovers the death when operations are refused, the detector when
    /// heartbeats go unanswered.
    pub fn kill(&self, id: DhtNodeId) -> DhtResult<()> {
        let inner = self.inner.read();
        match inner.nodes.get(&id) {
            Some(n) => {
                n.kill();
                Ok(())
            }
            None => Err(DhtError::UnknownNode(id)),
        }
    }

    /// Revive a previously killed node, reconciling its contents.
    ///
    /// Everything the node stored before the failure is suspect: while it was
    /// dead it missed overwrites, and any rebalance skipped it both as a
    /// source and as a destination. Without reconciliation a revived node
    /// that comes first in ring order serves its stale pre-failure values
    /// ahead of the fresh replicas. So, for every key the node holds:
    ///
    /// * if the node is still one of the key's replicas, the value is
    ///   refreshed from another live replica (when one holds the key);
    /// * if ring membership changed and the node is no longer a replica, the
    ///   entry is purged — unless no live replica holds the key, in which
    ///   case this may be the only surviving copy and it is kept for a later
    ///   [`Dht::rebalance`]/[`Dht::repair`] to re-place;
    /// * keys removed while the node was dead carry a tombstone and are
    ///   dropped rather than resurrected.
    ///
    /// The staleness refresh is the one reconciliation a pure placement scan
    /// cannot infer; the placement side (copy to missing successors, drop
    /// strays) is what [`Dht::repair`] does continuously, and churn without
    /// explicit revives is handled entirely by the repair loop.
    pub fn revive(&self, id: DhtNodeId) -> DhtResult<()> {
        // Write-lock the ring like every other membership change: data ops
        // must not observe (or overwrite) the node mid-reconciliation — a
        // concurrent put landing between our peer read and our refresh write
        // would be clobbered with the stale value we just fetched. The node
        // is marked alive first (a dead node refuses the reconciliation
        // writes), but no client can reach it until the lock is released.
        let inner = self.inner.write();
        let node = match inner.nodes.get(&id) {
            Some(n) => n,
            None => return Err(DhtError::UnknownNode(id)),
        };
        node.revive();
        for (key, _) in node.entries() {
            // A key removed while this node was dead must not resurrect.
            if self.tombstones.contains(&key) {
                let _ = node.remove(&key);
                continue;
            }
            let targets = inner.ring.successors(&key, inner.replication);
            let fresh = targets
                .iter()
                .filter(|t| **t != id)
                .filter_map(|t| inner.nodes.get(t))
                .find_map(|n| n.get(&key).ok().flatten());
            if targets.contains(&id) {
                if let Some(value) = fresh {
                    let _ = node.put(&key, value);
                }
            } else if fresh.is_some() {
                let _ = node.remove(&key);
            }
        }
        if let Some(det) = self.detector.lock().clone() {
            det.observe(id, true);
        }
        Ok(())
    }

    /// Re-distribute every key so that it lives exactly on its `replication`
    /// successors under the current ring. Used after joins/leaves. Dead nodes
    /// are skipped both as sources and as destinations; whatever they still
    /// hold is reconciled when [`Dht::revive`] brings them back.
    pub fn rebalance(&self) {
        let inner = self.inner.write();
        // Collect the union of all keys with one representative value.
        let mut all: HashMap<Vec<u8>, Bytes> = HashMap::new();
        for node in inner.nodes.values() {
            if !node.is_alive() {
                continue;
            }
            for (k, v) in node.entries() {
                // Tombstoned keys were removed; re-placing a lingering copy
                // would resurrect them.
                if self.tombstones.contains(&k) {
                    let _ = node.remove(&k);
                    continue;
                }
                all.entry(k).or_insert(v);
            }
        }
        // Re-place every key.
        for (key, value) in &all {
            let targets = inner.ring.successors(key, inner.replication);
            for (id, node) in &inner.nodes {
                if !node.is_alive() {
                    continue;
                }
                if targets.contains(id) {
                    let _ = node.put(key, value.clone());
                } else {
                    let _ = node.remove(key);
                }
            }
        }
    }

    /// Attach a heartbeat failure detector reading time from `clock`. Every
    /// current member is registered; joins and leaves keep the membership in
    /// sync. [`Dht::heartbeat_tick`] then probes members and turns missed
    /// heartbeats into suspicion; refused data operations feed the detector
    /// as well.
    pub fn enable_failure_detection(&self, clock: Arc<dyn Clock>, config: DetectorConfig) {
        let det = Arc::new(FailureDetector::new(clock, config));
        for id in self.node_ids() {
            det.register(id);
        }
        *self.detector.lock() = Some(det);
    }

    /// The attached failure detector, if any.
    pub fn failure_detector(&self) -> Option<Arc<FailureDetector<DhtNodeId>>> {
        self.detector.lock().clone()
    }

    /// Probe every member with a heartbeat and report the outcomes to the
    /// detector. Returns the members that *newly* became suspect in this
    /// round. No-op (empty) when no detector is attached.
    pub fn heartbeat_tick(&self) -> Vec<DhtNodeId> {
        let Some(det) = self.detector.lock().clone() else {
            return Vec::new();
        };
        let inner = self.inner.read();
        let mut ids: Vec<DhtNodeId> = inner.nodes.keys().copied().collect();
        ids.sort();
        let mut newly = Vec::new();
        for id in ids {
            let was_suspect = det.is_suspect(id);
            let ok = inner.nodes[&id].ping();
            det.observe(id, ok);
            if !was_suspect && det.is_suspect(id) {
                newly.push(id);
            }
        }
        newly
    }

    /// One active re-replication pass: probe liveness, scan every live
    /// node's contents, and restore each key onto its first `replication`
    /// *live* successors — copying from surviving replicas, dropping
    /// misplaced strays once the factor is met, and enforcing tombstones.
    /// This is how replication recovers from unannounced deaths (no
    /// [`Dht::revive`] needed) and how joined nodes receive their share of
    /// existing keys.
    ///
    /// Takes the membership write lock for the duration of the pass, so it
    /// serializes with data operations like rebalance does.
    pub fn repair(&self) -> DhtRepairReport {
        let inner = self.inner.write();
        let mut report = DhtRepairReport::default();
        // Discover liveness by probing, never by reading the injected flag.
        let mut ids: Vec<DhtNodeId> = inner.nodes.keys().copied().collect();
        ids.sort();
        let detector = self.detector.lock().clone();
        let mut live_ids: HashSet<DhtNodeId> = HashSet::new();
        for id in &ids {
            report.probed_nodes += 1;
            let ok = inner.nodes[id].ping();
            if let Some(det) = &detector {
                det.observe(*id, ok);
            }
            if ok {
                live_ids.insert(*id);
            } else {
                report.dead_nodes += 1;
            }
        }
        // Scan the live nodes' contents: who holds what, plus one
        // representative value per key to copy from.
        let mut holders: HashMap<Vec<u8>, HashSet<DhtNodeId>> = HashMap::new();
        let mut values: HashMap<Vec<u8>, Bytes> = HashMap::new();
        for id in &ids {
            if !live_ids.contains(id) {
                continue;
            }
            let node = &inner.nodes[id];
            for (k, v) in node.entries() {
                if self.tombstones.contains(&k) {
                    if let Ok(true) = node.remove(&k) {
                        report.tombstones_enforced += 1;
                    }
                    continue;
                }
                holders.entry(k.clone()).or_default().insert(*id);
                values.entry(k).or_insert(v);
            }
        }
        report.scanned_keys = values.len();
        // Restore every key onto its first `replication` live successors.
        for (key, value) in &values {
            let live_targets: Vec<DhtNodeId> = inner
                .ring
                .successors(key, inner.nodes.len())
                .into_iter()
                .filter(|id| live_ids.contains(id))
                .take(inner.replication)
                .collect();
            let holding = &holders[key];
            let missing: Vec<DhtNodeId> = live_targets
                .iter()
                .filter(|t| !holding.contains(t))
                .copied()
                .collect();
            if !missing.is_empty() {
                report.under_replicated += 1;
            }
            let mut placed = live_targets.len() - missing.len();
            for t in &missing {
                if inner.nodes[t].put(key, value.clone()).is_ok() {
                    report.repaired_copies += 1;
                    placed += 1;
                }
            }
            if placed >= live_targets.len() {
                // Factor restored on the live targets: misplaced live copies
                // are pure overhead now (and would serve stale data if the
                // key is later overwritten). Drop them.
                for h in holding {
                    if !live_targets.contains(h) {
                        if let Ok(true) = inner.nodes[h].remove(key) {
                            report.strays_removed += 1;
                        }
                    }
                }
            }
            if placed < inner.replication {
                report.still_under_replicated += 1;
            }
        }
        self.repair_runs.fetch_add(1, Ordering::Relaxed);
        self.repaired_entries
            .fetch_add(report.repaired_copies as u64, Ordering::Relaxed);
        self.under_replicated_last
            .store(report.still_under_replicated as u64, Ordering::Relaxed);
        report
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DhtStats {
        let inner = self.inner.read();
        let mut s = DhtStats {
            nodes: inner.nodes.len(),
            under_replicated: self.under_replicated_last.load(Ordering::Relaxed) as usize,
            repair_runs: self.repair_runs.load(Ordering::Relaxed),
            repaired_entries: self.repaired_entries.load(Ordering::Relaxed),
            ..Default::default()
        };
        for node in inner.nodes.values() {
            if node.is_alive() {
                s.live_nodes += 1;
            }
            s.total_entries += node.len();
            s.total_bytes += node.data_bytes();
        }
        if let Some(det) = self.detector.lock().clone() {
            s.failures_detected = det.failures_detected();
            s.suspected_nodes = det.suspects().len();
        }
        s
    }

    /// The nodes that would hold `key` (for tests and load inspection).
    pub fn replicas_for(&self, key: &[u8]) -> Vec<DhtNodeId> {
        let inner = self.inner.read();
        inner.ring.successors(key, inner.replication)
    }

    /// Per-node entry counts, for load-balance inspection.
    pub fn load_per_node(&self) -> HashMap<DhtNodeId, usize> {
        let inner = self.inner.read();
        inner.nodes.iter().map(|(id, n)| (*id, n.len())).collect()
    }

    /// The number of virtual nodes per physical node on the ring.
    pub fn virtual_nodes(&self) -> usize {
        self.inner.read().virtual_nodes
    }

    /// Number of tombstones currently retained (keys removed while one of
    /// their replicas was dead, kept so the value cannot resurrect).
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.keys.lock().len()
    }

    /// Drop every tombstone whose key no node — live or dead — still holds a
    /// copy of. Once the last lingering replica of a removed key is gone
    /// there is nothing left to resurrect, so the marker is pure memory
    /// overhead; a bulk delete (version garbage collection) would otherwise
    /// grow the tombstone set without bound. Returns the number dropped.
    pub fn compact_tombstones(&self) -> usize {
        let inner = self.inner.read();
        // This is a question about *persistent* state — a dead node's disk
        // still holds copies — so it uses the administrative entries() view
        // rather than data-plane gets (which dead nodes refuse).
        let mut held: HashSet<Vec<u8>> = HashSet::new();
        for node in inner.nodes.values() {
            for (k, _) in node.entries() {
                held.insert(k);
            }
        }
        let mut keys = self.tombstones.keys.lock();
        let before = keys.len();
        keys.retain(|key| held.contains(key));
        before - keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::clock::SimClock;
    use std::time::Duration;

    #[test]
    fn put_get_remove_roundtrip() {
        let dht = Dht::new(DhtConfig::default());
        dht.put(b"k1", Bytes::from_static(b"v1")).unwrap();
        assert_eq!(dht.get(b"k1").unwrap(), Bytes::from_static(b"v1"));
        assert!(dht.contains(b"k1"));
        assert!(dht.remove(b"k1").unwrap());
        assert!(!dht.contains(b"k1"));
        assert!(matches!(dht.get(b"k1"), Err(DhtError::NotFound { .. })));
    }

    #[test]
    fn replication_places_copies_on_distinct_nodes() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 3,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"value")).unwrap();
        let replicas = dht.replicas_for(b"key");
        assert_eq!(replicas.len(), 3);
        let unique: std::collections::HashSet<_> = replicas.iter().collect();
        assert_eq!(unique.len(), 3, "replicas must be on distinct nodes");
        // Exactly the replica nodes hold the key.
        let load = dht.load_per_node();
        let holders: usize = load.values().sum();
        assert_eq!(holders, 3);
    }

    #[test]
    fn survives_killing_one_replica() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 3,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"value")).unwrap();
        let replicas = dht.replicas_for(b"key");
        dht.kill(replicas[0]).unwrap();
        assert_eq!(dht.get(b"key").unwrap(), Bytes::from_static(b"value"));
        dht.revive(replicas[0]).unwrap();
        assert_eq!(dht.get(b"key").unwrap(), Bytes::from_static(b"value"));
    }

    #[test]
    fn writes_fail_over_past_dead_replicas() {
        let dht = Dht::new(DhtConfig {
            nodes: 3,
            replication: 2,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"value")).unwrap();
        for id in dht.replicas_for(b"key") {
            dht.kill(id).unwrap();
        }
        // Both stored copies are on dead nodes: unreadable for now.
        assert!(matches!(dht.get(b"key"), Err(DhtError::NotFound { .. })));
        // A new write walks past the dead replica set and lands on the one
        // surviving node instead of erroring.
        dht.put(b"key", Bytes::from_static(b"value2")).unwrap();
        assert_eq!(dht.get(b"key").unwrap(), Bytes::from_static(b"value2"));
    }

    #[test]
    fn fails_when_every_node_is_dead() {
        let dht = Dht::new(DhtConfig {
            nodes: 3,
            replication: 2,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"value")).unwrap();
        for id in dht.node_ids() {
            dht.kill(id).unwrap();
        }
        assert!(matches!(dht.get(b"key"), Err(DhtError::NotFound { .. })));
        let err = dht.put(b"key", Bytes::from_static(b"value2"));
        assert!(matches!(err, Err(DhtError::NotEnoughReplicas { .. })));
    }

    #[test]
    fn join_and_rebalance_preserve_all_keys() {
        let dht = Dht::new(DhtConfig {
            nodes: 3,
            replication: 2,
            ..Default::default()
        });
        for i in 0..200u32 {
            dht.put(
                format!("key-{i}").as_bytes(),
                Bytes::from(format!("value-{i}")),
            )
            .unwrap();
        }
        let new_node = dht.join();
        dht.rebalance();
        // All keys still readable.
        for i in 0..200u32 {
            assert_eq!(
                dht.get(format!("key-{i}").as_bytes()).unwrap(),
                Bytes::from(format!("value-{i}"))
            );
        }
        // The new node received some share of the keys.
        let load = dht.load_per_node();
        assert!(
            load[&new_node] > 0,
            "new node should hold keys after rebalance"
        );
    }

    #[test]
    fn leave_and_rebalance_restore_replication() {
        let dht = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            ..Default::default()
        });
        for i in 0..100u32 {
            dht.put(format!("key-{i}").as_bytes(), Bytes::from(vec![1u8; 10]))
                .unwrap();
        }
        let victim = dht.node_ids()[0];
        dht.leave(victim).unwrap();
        dht.rebalance();
        for i in 0..100u32 {
            assert!(dht.contains(format!("key-{i}").as_bytes()));
        }
        // Every key is now on exactly `replication` live nodes.
        let stats = dht.stats();
        assert_eq!(stats.total_entries, 100 * 2);
    }

    #[test]
    fn keys_spread_over_nodes() {
        let dht = Dht::new(DhtConfig {
            nodes: 8,
            replication: 1,
            virtual_nodes: 128,
        });
        for i in 0..2000u32 {
            dht.put(format!("page-{i}").as_bytes(), Bytes::from_static(b"x"))
                .unwrap();
        }
        let load = dht.load_per_node();
        let min = load.values().min().copied().unwrap();
        let max = load.values().max().copied().unwrap();
        // With 128 vnodes the imbalance should be modest.
        assert!(min > 0, "every node should hold at least one key");
        assert!(
            (max as f64) < (min as f64) * 4.0,
            "load imbalance too high: min={min}, max={max}"
        );
    }

    #[test]
    fn unknown_node_operations_error() {
        let dht = Dht::new(DhtConfig::default());
        let bogus = DhtNodeId(9999);
        assert!(matches!(dht.kill(bogus), Err(DhtError::UnknownNode(_))));
        assert!(matches!(dht.revive(bogus), Err(DhtError::UnknownNode(_))));
        assert!(matches!(dht.leave(bogus), Err(DhtError::UnknownNode(_))));
    }

    #[test]
    fn error_display() {
        assert!(DhtError::NotFound { key: "abc".into() }
            .to_string()
            .contains("abc"));
        assert!(DhtError::NotEnoughReplicas {
            wanted: 3,
            available: 1
        }
        .to_string()
        .contains('3'));
        assert!(DhtError::Empty.to_string().contains("no nodes"));
    }

    #[test]
    fn revived_node_serves_fresh_values_not_stale_ones() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 3,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"old")).unwrap();
        let replicas = dht.replicas_for(b"key");
        dht.kill(replicas[0]).unwrap();
        // Overwrite while the primary is down: only the live replicas see it.
        dht.put(b"key", Bytes::from_static(b"new")).unwrap();
        dht.rebalance();
        dht.revive(replicas[0]).unwrap();
        // Pre-fix the revived primary, first in ring order, answered with its
        // stale pre-failure value.
        assert_eq!(dht.get(b"key").unwrap(), Bytes::from_static(b"new"));
        // And the primary itself was refreshed, not bypassed.
        let stats = dht.stats();
        assert_eq!(stats.live_nodes, 5);
    }

    #[test]
    fn revive_purges_keys_the_node_no_longer_owns() {
        let dht = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            virtual_nodes: 64,
        });
        for i in 0..200u32 {
            dht.put(
                format!("key-{i}").as_bytes(),
                Bytes::from(format!("value-{i}")),
            )
            .unwrap();
        }
        let victim = dht.node_ids()[0];
        dht.kill(victim).unwrap();
        // Ring membership changes while the node is dead.
        dht.join();
        dht.join();
        dht.rebalance();
        dht.revive(victim).unwrap();
        // Every key is still readable with the right value...
        for i in 0..200u32 {
            assert_eq!(
                dht.get(format!("key-{i}").as_bytes()).unwrap(),
                Bytes::from(format!("value-{i}"))
            );
        }
        // ...and the revived node only holds keys it is (still) a replica
        // for: stale entries for re-homed keys were purged.
        let inner = dht.inner.read();
        let node = &inner.nodes[&victim];
        for (key, _) in node.entries() {
            assert!(
                inner
                    .ring
                    .successors(&key, inner.replication)
                    .contains(&victim),
                "revived node kept a key it no longer owns: {:?}",
                String::from_utf8_lossy(&key)
            );
        }
    }

    #[test]
    fn keys_removed_while_a_replica_was_dead_do_not_resurrect() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 3,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"value")).unwrap();
        let replicas = dht.replicas_for(b"key");
        dht.kill(replicas[0]).unwrap();
        // Removed while the primary is down: only live replicas drop it.
        assert!(dht.remove(b"key").unwrap());
        dht.revive(replicas[0]).unwrap();
        assert!(
            matches!(dht.get(b"key"), Err(DhtError::NotFound { .. })),
            "deleted key resurrected through the revived replica"
        );
        // A re-put after the removal clears the tombstone.
        dht.put(b"key", Bytes::from_static(b"again")).unwrap();
        dht.kill(replicas[0]).unwrap();
        dht.revive(replicas[0]).unwrap();
        assert_eq!(dht.get(b"key").unwrap(), Bytes::from_static(b"again"));
    }

    #[test]
    fn tombstone_compaction_keeps_only_markers_with_lingering_copies() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 3,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"value")).unwrap();
        let replicas = dht.replicas_for(b"key");
        dht.kill(replicas[0]).unwrap();
        assert!(dht.remove(b"key").unwrap());
        assert_eq!(dht.tombstone_count(), 1);
        // The dead replica still holds a copy: the marker must survive
        // compaction or the value would resurrect at revive time.
        assert_eq!(dht.compact_tombstones(), 0);
        assert_eq!(dht.tombstone_count(), 1);
        // Revive drops the lingering copy (guided by the tombstone); with no
        // copy left anywhere the marker is dead weight and compacts away.
        dht.revive(replicas[0]).unwrap();
        assert_eq!(dht.compact_tombstones(), 1);
        assert_eq!(dht.tombstone_count(), 0);
        assert!(matches!(dht.get(b"key"), Err(DhtError::NotFound { .. })));
    }

    #[test]
    fn put_many_and_get_many_roundtrip() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 2,
            ..Default::default()
        });
        let entries: Vec<(Vec<u8>, Bytes)> = (0..50u32)
            .map(|i| (format!("k{i}").into_bytes(), Bytes::from(format!("v{i}"))))
            .collect();
        dht.put_many(&entries).unwrap();
        for (k, v) in &entries {
            assert_eq!(&dht.get(k).unwrap(), v);
        }
        let keys: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
        let got = dht.get_many(&keys).unwrap();
        assert_eq!(got.len(), keys.len());
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v.as_ref().unwrap(), &entries[i].1);
        }
        // A missing key comes back as None, matching get()'s NotFound.
        assert_eq!(dht.get_many(&[b"missing".to_vec()]).unwrap(), vec![None]);
        // Empty batches are no-ops. Keys are generic over AsRef<[u8]>, so
        // empty slices need an explicit key type.
        dht.put_many::<&[u8]>(&[]).unwrap();
        assert!(dht.get_many::<&[u8]>(&[]).unwrap().is_empty());
    }

    #[test]
    fn batch_ops_use_fewer_round_trips_than_single_ops() {
        let single = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            ..Default::default()
        });
        let batched = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            ..Default::default()
        });
        let entries: Vec<(Vec<u8>, Bytes)> = (0..100u32)
            .map(|i| (format!("k{i}").into_bytes(), Bytes::from_static(b"v")))
            .collect();
        for (k, v) in &entries {
            single.put(k, v.clone()).unwrap();
        }
        batched.put_many(&entries).unwrap();
        // Single puts: one round trip per key-replica (100 * 2). The batch
        // contacts each of the 4 nodes at most once.
        assert_eq!(single.round_trips(), 200);
        assert!(batched.round_trips() <= 4);

        let keys: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
        let before = batched.round_trips();
        let got = batched.get_many(&keys).unwrap();
        assert!(got.iter().all(|v| v.is_some()));
        // All keys resolve at their primaries: at most one contact per node.
        assert!(batched.round_trips() - before <= 4);
    }

    #[test]
    fn read_and_write_round_trips_are_counted_separately() {
        let dht = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            ..Default::default()
        });
        dht.put(b"k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(dht.write_round_trips(), 2);
        assert_eq!(dht.read_round_trips(), 0);
        dht.get(b"k").unwrap();
        assert_eq!(dht.read_round_trips(), 1);
        let keys: Vec<Vec<u8>> = vec![b"k".to_vec()];
        dht.get_many(&keys).unwrap();
        assert_eq!(dht.read_round_trips(), 2);
        assert_eq!(
            dht.round_trips(),
            dht.read_round_trips() + dht.write_round_trips()
        );
    }

    #[test]
    fn attached_wire_charges_simulated_time_and_bytes() {
        use simcluster::netmodel::NetworkModel;
        use simcluster::topology::ClusterTopology;
        let topo = ClusterTopology::flat(4);
        let net = Arc::new(wire::SimNet::new(
            topo.clone(),
            NetworkModel::grid5000_like(),
        ));
        let dht = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            ..Default::default()
        });
        dht.attach_wire(net.clone(), topo.all_nodes().collect(), topo.node(0));
        dht.put(b"key", Bytes::from_static(b"value")).unwrap();
        dht.get(b"key").unwrap();
        assert!(net.makespan() > simcluster::time::SimDuration::ZERO);
        assert_eq!(net.exchanges(), dht.round_trips());
        let snap = dht.wire_counters().snapshot();
        assert_eq!(snap.messages, dht.round_trips());
        // Two replica puts carry key+value+overhead each; the get's response
        // carries the value back.
        assert!(snap.bytes_sent >= 2 * (3 + 5 + MSG_OVERHEAD));
        assert!(snap.bytes_received >= 5);
    }

    #[test]
    fn put_many_with_every_node_dead_reports_shortfall() {
        let dht = Dht::new(DhtConfig {
            nodes: 3,
            replication: 2,
            ..Default::default()
        });
        for id in dht.node_ids() {
            dht.kill(id).unwrap();
        }
        let entries = vec![(b"k".to_vec(), Bytes::from_static(b"v"))];
        assert!(matches!(
            dht.put_many(&entries),
            Err(DhtError::NotEnoughReplicas { .. })
        ));
    }

    #[test]
    fn get_many_fails_over_dead_primaries() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 3,
            ..Default::default()
        });
        let entries: Vec<(Vec<u8>, Bytes)> = (0..60u32)
            .map(|i| (format!("k{i}").into_bytes(), Bytes::from(format!("v{i}"))))
            .collect();
        dht.put_many(&entries).unwrap();
        dht.kill(dht.node_ids()[0]).unwrap();
        let keys: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
        let got = dht.get_many(&keys).unwrap();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v.as_ref().unwrap(), &entries[i].1, "key {i} lost");
        }
    }

    #[test]
    fn put_many_fails_over_when_a_replica_dies_mid_batch() {
        // The batch is grouped per node and groups are visited in node-id
        // order; killing a node *without telling the front-end* means its
        // group is still attempted and refused — the mid-batch death path —
        // and the affected entries must fail over instead of erroring the
        // whole batch.
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 2,
            ..Default::default()
        });
        let victim = dht.node_ids()[4];
        dht.kill(victim).unwrap();
        let entries: Vec<(Vec<u8>, Bytes)> = (0..80u32)
            .map(|i| (format!("k{i}").into_bytes(), Bytes::from(format!("v{i}"))))
            .collect();
        dht.put_many(&entries).unwrap();
        // Every entry is readable and fully replicated on live nodes: the
        // dead node's share failed over clockwise.
        for (k, v) in &entries {
            assert_eq!(&dht.get(k).unwrap(), v);
        }
        let stats = dht.stats();
        assert_eq!(
            stats.total_entries,
            entries.len() * 2,
            "entries on dead replicas must fail over to the factor"
        );
        let load = dht.load_per_node();
        assert_eq!(load[&victim], 0, "the dead node accepted nothing");
    }

    #[test]
    fn reads_chase_writes_that_failed_over_past_the_replica_set() {
        let dht = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            ..Default::default()
        });
        // Kill the whole primary replica set, then write: the copy lands
        // clockwise past the dead replicas.
        for id in dht.replicas_for(b"key") {
            dht.kill(id).unwrap();
        }
        dht.put(b"key", Bytes::from_static(b"survivor")).unwrap();
        assert_eq!(dht.get(b"key").unwrap(), Bytes::from_static(b"survivor"));
        let got = dht.get_many(&[b"key".to_vec()]).unwrap();
        assert_eq!(got[0].as_ref().unwrap(), &Bytes::from_static(b"survivor"));
    }

    #[test]
    fn repair_restores_replication_after_an_unannounced_death() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 2,
            ..Default::default()
        });
        for i in 0..100u32 {
            dht.put(
                format!("key-{i}").as_bytes(),
                Bytes::from(format!("value-{i}")),
            )
            .unwrap();
        }
        // Kill a loaded node. Nobody calls revive; repair must discover the
        // death (by probing) and re-replicate from the surviving copies.
        let victim = *dht
            .load_per_node()
            .iter()
            .max_by_key(|(_, n)| **n)
            .unwrap()
            .0;
        dht.kill(victim).unwrap();
        let report = dht.repair();
        assert_eq!(report.dead_nodes, 1);
        assert!(report.under_replicated > 0, "the kill shed replicas");
        assert!(report.repaired_copies > 0, "repair created copies");
        assert_eq!(report.still_under_replicated, 0);
        let stats = dht.stats();
        assert!(stats.repaired_entries > 0);
        assert_eq!(stats.repair_runs, 1);
        assert_eq!(stats.under_replicated, 0);
        // The proof of re-replication: kill one of the nodes repair copied
        // to — every key must still be readable somewhere.
        let second = *dht
            .load_per_node()
            .iter()
            .filter(|(id, _)| **id != victim)
            .max_by_key(|(_, n)| **n)
            .unwrap()
            .0;
        dht.kill(second).unwrap();
        for i in 0..100u32 {
            assert_eq!(
                dht.get(format!("key-{i}").as_bytes()).unwrap(),
                Bytes::from(format!("value-{i}")),
                "key-{i} lost after a second failure: repair did not restore the factor"
            );
        }
    }

    #[test]
    fn repair_is_idempotent_on_a_healthy_ring() {
        let dht = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            ..Default::default()
        });
        for i in 0..50u32 {
            dht.put(format!("k{i}").as_bytes(), Bytes::from_static(b"v"))
                .unwrap();
        }
        let first = dht.repair();
        assert_eq!(first.under_replicated, 0);
        assert_eq!(first.repaired_copies, 0);
        assert_eq!(first.strays_removed, 0);
        assert_eq!(first.scanned_keys, 50);
    }

    #[test]
    fn repair_populates_joined_nodes() {
        let dht = Dht::new(DhtConfig {
            nodes: 3,
            replication: 2,
            ..Default::default()
        });
        for i in 0..200u32 {
            dht.put(format!("k{i}").as_bytes(), Bytes::from(format!("v{i}")))
                .unwrap();
        }
        let newcomer = dht.join();
        let report = dht.repair();
        assert!(
            report.repaired_copies > 0,
            "the joined node takes over successor slots, so keys must move"
        );
        assert!(report.strays_removed > 0, "old holders shed moved keys");
        let load = dht.load_per_node();
        assert!(load[&newcomer] > 0, "joined node received keys via repair");
        for i in 0..200u32 {
            assert_eq!(
                dht.get(format!("k{i}").as_bytes()).unwrap(),
                Bytes::from(format!("v{i}"))
            );
        }
        // Exactly replication copies of every key remain.
        assert_eq!(dht.stats().total_entries, 200 * 2);
    }

    #[test]
    fn repair_enforces_tombstones_on_live_strays() {
        let dht = Dht::new(DhtConfig {
            nodes: 5,
            replication: 3,
            ..Default::default()
        });
        dht.put(b"key", Bytes::from_static(b"value")).unwrap();
        let replicas = dht.replicas_for(b"key");
        dht.kill(replicas[0]).unwrap();
        assert!(dht.remove(b"key").unwrap());
        // Bring the dead holder back WITHOUT revive's reconciliation by
        // reviving the raw node handle: repair must drop the lingering copy.
        {
            let inner = dht.inner.read();
            inner.nodes[&replicas[0]].revive();
        }
        let report = dht.repair();
        assert!(report.tombstones_enforced > 0);
        assert!(matches!(dht.get(b"key"), Err(DhtError::NotFound { .. })));
    }

    #[test]
    fn heartbeats_discover_deaths_on_the_sim_clock() {
        let clock = Arc::new(SimClock::new());
        let dht = Dht::new(DhtConfig {
            nodes: 4,
            replication: 2,
            ..Default::default()
        });
        dht.enable_failure_detection(
            Arc::clone(&clock) as Arc<dyn Clock>,
            DetectorConfig {
                heartbeat_interval: Duration::from_millis(10),
                suspicion_timeout: Duration::from_millis(30),
            },
        );
        let victim = dht.node_ids()[0];
        dht.kill(victim).unwrap();
        // Within the suspicion window: the miss is tolerated.
        clock.advance(Duration::from_millis(10));
        assert!(dht.heartbeat_tick().is_empty());
        assert_eq!(dht.stats().failures_detected, 0);
        // Past the window: the next failed probe turns into suspicion.
        clock.advance(Duration::from_millis(30));
        assert_eq!(dht.heartbeat_tick(), vec![victim]);
        let stats = dht.stats();
        assert_eq!(stats.failures_detected, 1);
        assert_eq!(stats.suspected_nodes, 1);
        assert!(dht.failure_detector().unwrap().is_suspect(victim));
        // Recovery clears the suspicion.
        dht.revive(victim).unwrap();
        assert!(dht.heartbeat_tick().is_empty());
        assert_eq!(dht.stats().suspected_nodes, 0);
    }

    #[test]
    fn refused_operations_feed_the_detector() {
        let clock = Arc::new(SimClock::new());
        let dht = Dht::new(DhtConfig {
            nodes: 3,
            replication: 2,
            ..Default::default()
        });
        dht.enable_failure_detection(
            Arc::clone(&clock) as Arc<dyn Clock>,
            DetectorConfig {
                heartbeat_interval: Duration::from_millis(10),
                suspicion_timeout: Duration::from_millis(30),
            },
        );
        let victim = dht.replicas_for(b"key")[0];
        dht.kill(victim).unwrap();
        clock.advance(Duration::from_millis(50));
        // No heartbeat round ran; the refused write itself is the evidence.
        dht.put(b"key", Bytes::from_static(b"v")).unwrap();
        assert!(dht.failure_detector().unwrap().is_suspect(victim));
    }

    #[test]
    fn retry_policy_bounds_attempts_and_counts_retries() {
        let dht = Dht::new(DhtConfig {
            nodes: 3,
            replication: 2,
            ..Default::default()
        });
        dht.set_retry_policy(RetryPolicy {
            attempts: 3,
            backoff: Duration::from_micros(100),
        });
        dht.put(b"key", Bytes::from_static(b"v")).unwrap();
        assert_eq!(dht.retries(), 0, "successful ops never retry");
        // An authoritative miss (all replicas alive, none holds the key) is
        // final: no retries burned on it.
        assert!(dht.get(b"absent").is_err());
        assert!(dht.get_many(&[b"absent".to_vec()]).unwrap()[0].is_none());
        assert_eq!(dht.retries(), 0);
        // With every node dead the transient paths retry to exhaustion.
        for id in dht.node_ids() {
            dht.kill(id).unwrap();
        }
        assert!(matches!(
            dht.put(b"key", Bytes::from_static(b"v2")),
            Err(DhtError::NotEnoughReplicas { .. })
        ));
        assert_eq!(dht.retries(), 2);
        assert!(matches!(dht.get(b"key"), Err(DhtError::NotFound { .. })));
        assert_eq!(dht.retries(), 4);
        assert!(dht.get_many(&[b"key".to_vec()]).unwrap()[0].is_none());
        assert_eq!(dht.retries(), 6);
        let entries = vec![(b"key".to_vec(), Bytes::from_static(b"v3"))];
        assert!(dht.put_many(&entries).is_err());
        assert_eq!(dht.retries(), 8);
    }

    #[test]
    fn retried_reads_succeed_once_the_replica_recovers() {
        let dht = Arc::new(Dht::new(DhtConfig {
            nodes: 3,
            replication: 2,
            ..Default::default()
        }));
        dht.set_retry_policy(RetryPolicy {
            attempts: 50,
            backoff: Duration::from_millis(2),
        });
        dht.put(b"key", Bytes::from_static(b"survives")).unwrap();
        for id in dht.node_ids() {
            dht.kill(id).unwrap();
        }
        // Recovery lands while the reader is mid-backoff.
        let reviver = {
            let dht = Arc::clone(&dht);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                for id in dht.node_ids() {
                    dht.revive(id).unwrap();
                }
            })
        };
        assert_eq!(dht.get(b"key").unwrap(), Bytes::from_static(b"survives"));
        assert!(
            dht.retries() > 0,
            "the read must have waited out the outage"
        );
        reviver.join().unwrap();
    }

    #[test]
    fn concurrent_clients_publish_metadata() {
        let dht = std::sync::Arc::new(Dht::new(DhtConfig {
            nodes: 6,
            replication: 2,
            virtual_nodes: 64,
        }));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let dht = std::sync::Arc::clone(&dht);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        let key = format!("blob-{t}/v{i}/node");
                        dht.put(key.as_bytes(), Bytes::from(vec![t as u8; 32]))
                            .unwrap();
                        assert_eq!(dht.get(key.as_bytes()).unwrap()[0], t as u8);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = dht.stats();
        assert_eq!(stats.total_entries, 8 * 250 * 2);
    }
}
