//! Offline shim for a small task executor, in the spirit of tokio's core
//! loop but synchronous: a fixed pool of worker threads polling a global run
//! queue, plus the channel primitives (`oneshot`, `mpsc`) and the
//! message-loop [`actor`] pattern the data plane is built on.
//!
//! Design points that matter to callers:
//!
//! * **Bounded threads.** The pool is sized once (`worker_count`, clamped to
//!   4..=16, overridable with `MINIEXEC_WORKERS`) and never grows. In-flight
//!   concurrency is bounded by queue depth, not thread count, which is what
//!   the [`census`] module exists to prove.
//! * **Helping waits.** A worker thread that blocks joining another task
//!   (`JoinHandle::join`, `scope`, `join_all`) does not idle: it pops queued
//!   tasks (newest first, so a reply it is waiting on tends to be serviced
//!   immediately) and runs them inline. This is what makes nested fan-out on
//!   a fixed pool deadlock-free.
//! * **Actors own their state single-threaded.** [`actor::spawn`] starts one
//!   dedicated, census-registered thread per component (provider, DHT node);
//!   callers hold a cloneable handle and enqueue commands. Dropping the last
//!   handle disconnects the mailbox and the loop exits after draining;
//!   in-flight repliers are dropped, so waiting callers observe
//!   [`oneshot::Canceled`] instead of hanging.
//!
//! No dependencies; everything is `std::sync`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Process-wide thread accounting for every thread the storage/compute tier
/// spawns (executor workers, actor loops, legacy scoped-pool workers). Client
/// threads are *not* registered — the census answers "how many threads does
/// the system itself burn", which must stay flat as clients scale.
pub mod census {
    use std::sync::atomic::{AtomicUsize, Ordering};

    static SPAWNED: AtomicUsize = AtomicUsize::new(0);
    static LIVE: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    /// Total system threads ever registered in this process.
    pub fn spawned() -> usize {
        SPAWNED.load(Ordering::SeqCst)
    }

    /// System threads currently alive.
    pub fn live() -> usize {
        LIVE.load(Ordering::SeqCst)
    }

    /// High-water mark of concurrently-live system threads.
    pub fn peak() -> usize {
        PEAK.load(Ordering::SeqCst)
    }

    /// RAII registration: created at the top of a system thread, dropped when
    /// the thread exits (including by unwinding).
    #[must_use = "the census entry lasts only as long as this guard"]
    pub struct Registration(());

    impl Registration {
        pub fn new() -> Self {
            SPAWNED.fetch_add(1, Ordering::SeqCst);
            let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(live, Ordering::SeqCst);
            Registration(())
        }
    }

    impl Default for Registration {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Drop for Registration {
        fn drop(&mut self) {
            LIVE.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

type Task = Box<dyn FnOnce() + Send + 'static>;

struct QueuedTask {
    f: Task,
    /// Safe to run inline under an idle-waiting caller's stack frame. Short
    /// work items (page I/O, replica pushes, fan-out chunks) are helpable;
    /// long-running control loops (tasktracker slots) are NOT — inlining a
    /// reduce loop under a map slot's poll suspends the map slot until the
    /// whole job finishes, which the reduce loop may itself be waiting on.
    helpable: bool,
}

struct Executor {
    tasks: Mutex<VecDeque<QueuedTask>>,
    available: Condvar,
    workers: usize,
}

static EXECUTOR: OnceLock<&'static Executor> = OnceLock::new();

thread_local! {
    static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Number of pool workers (fixed for the life of the process).
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("MINIEXEC_WORKERS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 16)
}

fn executor() -> &'static Executor {
    EXECUTOR.get_or_init(|| {
        let ex: &'static Executor = Box::leak(Box::new(Executor {
            tasks: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            workers: worker_count(),
        }));
        for i in 0..ex.workers {
            std::thread::Builder::new()
                .name(format!("miniexec-{i}"))
                .spawn(move || worker_loop(ex))
                .expect("spawn miniexec worker");
        }
        ex
    })
}

fn worker_loop(ex: &'static Executor) {
    let _census = census::Registration::new();
    IS_WORKER.with(|w| w.set(true));
    loop {
        let task = {
            let mut q = ex.tasks.lock().unwrap();
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = ex.available.wait(q).unwrap();
            }
        };
        run_task(task.f);
    }
}

fn run_task(task: Task) {
    // Every submitted task already routes its panic into a channel; this
    // catch is a backstop so a worker thread can never die.
    let _ = catch_unwind(AssertUnwindSafe(task));
}

fn submit(task: Task) {
    submit_with(task, true);
}

fn submit_with(task: Task, helpable: bool) {
    let ex = executor();
    ex.tasks
        .lock()
        .unwrap()
        .push_back(QueuedTask { f: task, helpable });
    ex.available.notify_one();
}

/// True when called from a pool worker thread.
pub fn on_worker_thread() -> bool {
    IS_WORKER.with(|w| w.get())
}

/// Pop the most recently queued *helpable* task and run it inline. Returns
/// false when no helpable task is queued. Newest-first order means a blocked
/// caller helping itself tends to run exactly the task it is waiting on.
/// Non-helpable tasks (long-running slot loops) are left for dedicated
/// workers — see [`QueuedTask::helpable`].
pub fn run_one_queued_task() -> bool {
    let Some(ex) = EXECUTOR.get() else {
        return false;
    };
    let task = {
        let mut q = ex.tasks.lock().unwrap();
        match q.iter().rposition(|t| t.helpable) {
            Some(i) => q.remove(i),
            None => None,
        }
    };
    match task {
        Some(t) => {
            run_task(t.f);
            true
        }
        None => false,
    }
}

/// Idle-wait used by polling loops: on a worker thread, donate the wait to a
/// queued task if one exists; otherwise (or off-pool) sleep for `d`.
pub fn poll_wait(d: Duration) {
    if on_worker_thread() && run_one_queued_task() {
        return;
    }
    std::thread::sleep(d);
}

/// Spawn `f` onto the pool and return a handle to its result.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = oneshot::channel();
    submit(Box::new(move || {
        let result = catch_unwind(AssertUnwindSafe(f));
        let _ = tx.send(result);
    }));
    JoinHandle { rx }
}

/// Run `f` on the pool and block the current thread until it completes.
pub fn block_on<T, F>(f: F) -> T
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    spawn(f).join()
}

/// Handle to a spawned task's result.
pub struct JoinHandle<T> {
    rx: oneshot::Receiver<std::thread::Result<T>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the task, helping the pool while blocked. Panics propagate.
    pub fn join(self) -> T {
        match recv_helping(&self.rx) {
            Ok(Ok(v)) => v,
            Ok(Err(panic)) => resume_unwind(panic),
            Err(oneshot::Canceled) => panic!("miniexec task was dropped without completing"),
        }
    }

    /// True once the task has finished (or been lost); `join` will not block.
    pub fn is_finished(&self) -> bool {
        self.rx.is_ready()
    }
}

/// Join every handle, in order, helping the pool while blocked.
pub fn join_all<T>(handles: Vec<JoinHandle<T>>) -> Vec<T> {
    handles.into_iter().map(|h| h.join()).collect()
}

/// `select`-ish helper: wait until *any* of the handles completes, remove it
/// from the vec, and return its index and value.
pub fn select_ready<T>(handles: &mut Vec<JoinHandle<T>>) -> Option<(usize, T)> {
    if handles.is_empty() {
        return None;
    }
    loop {
        if let Some(i) = handles.iter().position(|h| h.is_finished()) {
            return Some((i, handles.swap_remove(i).join()));
        }
        poll_wait(Duration::from_micros(200));
    }
}

fn recv_helping<T>(rx: &oneshot::Receiver<T>) -> Result<T, oneshot::Canceled> {
    if !on_worker_thread() {
        return rx.recv();
    }
    loop {
        match rx.try_recv() {
            Ok(v) => return Ok(v),
            Err(oneshot::TryRecvError::Canceled) => return Err(oneshot::Canceled),
            Err(oneshot::TryRecvError::Empty) => {
                if !run_one_queued_task() {
                    match rx.recv_timeout(Duration::from_micros(200)) {
                        Ok(v) => return Ok(v),
                        Err(oneshot::TryRecvError::Canceled) => return Err(oneshot::Canceled),
                        Err(oneshot::TryRecvError::Empty) => {}
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scoped tasks: spawn borrowing closures onto the pool, in the shape of
// `std::thread::scope`. The scope does not return until every spawned task
// has run to completion (on success, panic, or early exit), which is what
// makes the lifetime erasure below sound.
//
// A scope keeps its tasks in its OWN queue and submits one opaque "token"
// per task to the global pool; a token makes a worker run one task from the
// scope's queue (a no-op once the queue is drained). The point of the
// indirection: a thread blocked on this scope (`scope` itself, or a
// `ScopedHandle::join`) helps by running tasks *of this scope only*. Helping
// on arbitrary pool tasks is a deadlock: the helper may be mid-way through
// work that a popped task transitively waits on (e.g. a page push whose
// commit a reduce slot is polling for), and inlining that task under the
// helper's frame makes the wait circular.
// ---------------------------------------------------------------------------

struct ScopeState {
    inner: Mutex<ScopeInner>,
    /// Notified on every task completion and every new spawn.
    signal: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct ScopeInner {
    /// Tasks spawned and not yet finished (queued or running).
    pending: usize,
    /// Tasks spawned and not yet started.
    queue: VecDeque<Task>,
}

/// Pop one task of `state`'s scope and run it inline. False if none queued.
fn run_scope_task(state: &ScopeState) -> bool {
    let task = state.inner.lock().unwrap().queue.pop_front();
    match task {
        Some(t) => {
            run_task(t);
            true
        }
        None => false,
    }
}

/// Spawn site for borrowing tasks; shareable with the tasks themselves, so
/// a scoped task may spawn further scoped tasks.
pub struct Scope<'env> {
    state: Arc<ScopeState>,
    /// Whether this scope's tokens may be inlined by idle-waiting helpers
    /// ([`run_one_queued_task`]). True for short work items; false for
    /// long-running loops spawned via [`scope_blocking`].
    helpable: bool,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

/// Handle to one scoped task's result.
pub struct ScopedHandle<T> {
    rx: oneshot::Receiver<T>,
    state: Arc<ScopeState>,
}

impl<T> ScopedHandle<T> {
    /// Wait for the task, helping its own scope while blocked. If the task
    /// panicked the panic is re-raised here.
    pub fn join(self) -> T {
        loop {
            match self.rx.try_recv() {
                Ok(v) => return v,
                Err(oneshot::TryRecvError::Canceled) => panic!("scoped task panicked"),
                Err(oneshot::TryRecvError::Empty) => {
                    if !run_scope_task(&self.state) {
                        // The task is running on another thread (or queued
                        // behind a racing helper): wait for the reply, but
                        // re-check the scope queue periodically in case a
                        // sibling task spawns more scoped work.
                        match self.rx.recv_timeout(Duration::from_micros(200)) {
                            Ok(v) => return v,
                            Err(oneshot::TryRecvError::Canceled) => {
                                panic!("scoped task panicked")
                            }
                            Err(oneshot::TryRecvError::Empty) => {}
                        }
                    }
                }
            }
        }
    }
}

impl<'env> Scope<'env> {
    pub fn spawn<T, F>(&self, f: F) -> ScopedHandle<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let (tx, rx) = oneshot::channel();
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => {
                    let _ = tx.send(v);
                }
                Err(panic) => {
                    drop(tx); // joiners observe Canceled
                    let mut slot = state.panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(panic);
                    }
                }
            }
            let mut inner = state.inner.lock().unwrap();
            inner.pending -= 1;
            drop(inner);
            state.signal.notify_all();
        });
        // SAFETY: `scope` blocks until `pending` reaches zero before
        // returning on every path, so the task (and everything it borrows
        // from 'env) outlives its execution.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                task,
            )
        };
        {
            let mut inner = self.state.inner.lock().unwrap();
            inner.pending += 1;
            inner.queue.push_back(task);
        }
        self.state.signal.notify_all();
        // The token: any pool worker may come and run one task of this
        // scope. Harmlessly idempotent if a helper drained the queue first.
        let st = Arc::clone(&self.state);
        submit_with(
            Box::new(move || {
                run_scope_task(&st);
            }),
            self.helpable,
        );
        ScopedHandle {
            rx,
            state: Arc::clone(&self.state),
        }
    }
}

/// Run `f` with a [`Scope`] that can spawn borrowing tasks onto the pool;
/// block (helping the scope's own tasks) until all of them finish. The first
/// task panic is re-raised after the scope is quiesced, like
/// `std::thread::scope`.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R {
    scope_impl(true, f)
}

/// Like [`scope`], but for tasks that run long and may block on each other's
/// progress (e.g. tasktracker slot loops). Their tokens are never inlined by
/// idle-waiting helpers — only dedicated pool workers (and threads blocked on
/// *this* scope) run them, so a polling slot can never suspend itself under a
/// sibling slot's loop.
pub fn scope_blocking<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R {
    scope_impl(false, f)
}

fn scope_impl<'env, R>(helpable: bool, f: impl FnOnce(&Scope<'env>) -> R) -> R {
    let s = Scope {
        state: Arc::new(ScopeState {
            inner: Mutex::new(ScopeInner {
                pending: 0,
                queue: VecDeque::new(),
            }),
            signal: Condvar::new(),
            panic: Mutex::new(None),
        }),
        helpable,
        _env: std::marker::PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
    wait_quiesced(&s.state);
    if let Some(panic) = s.state.panic.lock().unwrap().take() {
        resume_unwind(panic);
    }
    match result {
        Ok(r) => r,
        Err(panic) => resume_unwind(panic),
    }
}

fn wait_quiesced(state: &ScopeState) {
    loop {
        let task = {
            let mut inner = state.inner.lock().unwrap();
            loop {
                if let Some(t) = inner.queue.pop_front() {
                    break Some(t);
                }
                if inner.pending == 0 {
                    break None;
                }
                // Queue drained but tasks still running elsewhere; they may
                // spawn more into this scope, so wake on both completions
                // and spawns.
                inner = state.signal.wait(inner).unwrap();
            }
        };
        match task {
            Some(t) => run_task(t),
            None => return,
        }
    }
}

// ---------------------------------------------------------------------------
// oneshot: single-value reply channel.
// ---------------------------------------------------------------------------

pub mod oneshot {
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    /// The sender was dropped without sending.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Canceled;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Canceled,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        value: Option<T>,
        sender_alive: bool,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                value: None,
                sender_alive: true,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(self, value: T) -> Result<(), T> {
            // A oneshot send cannot observe receiver death cheaply here; the
            // value is parked and dropped with the shared state if unread.
            self.shared.state.lock().unwrap().value = Some(value);
            self.shared.ready.notify_all();
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().sender_alive = false;
            self.shared.ready.notify_all();
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, Canceled> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = state.value.take() {
                    return Ok(v);
                }
                if !state.sender_alive {
                    return Err(Canceled);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = state.value.take() {
                    return Ok(v);
                }
                if !state.sender_alive {
                    return Err(TryRecvError::Canceled);
                }
                let (next, waited) = self.shared.ready.wait_timeout(state, timeout).unwrap();
                state = next;
                if waited.timed_out() {
                    return match state.value.take() {
                        Some(v) => Ok(v),
                        None => Err(TryRecvError::Empty),
                    };
                }
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            match state.value.take() {
                Some(v) => Ok(v),
                None if state.sender_alive => Err(TryRecvError::Empty),
                None => Err(TryRecvError::Canceled),
            }
        }

        pub fn is_ready(&self) -> bool {
            let state = self.shared.state.lock().unwrap();
            state.value.is_some() || !state.sender_alive
        }

        pub fn is_canceled(&self) -> bool {
            let state = self.shared.state.lock().unwrap();
            state.value.is_none() && !state.sender_alive
        }
    }
}

// ---------------------------------------------------------------------------
// mpsc: unbounded multi-producer mailbox channel.
// ---------------------------------------------------------------------------

pub mod mpsc {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// All senders (on recv) or the receiver (on send) are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Disconnected;

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), Disconnected> {
            let mut state = self.shared.state.lock().unwrap();
            if !state.receiver_alive {
                return Err(Disconnected);
            }
            state.queue.push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; `Err` once every sender is gone
        /// *and* the queue is drained.
        pub fn recv(&self) -> Result<T, Disconnected> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(Disconnected);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        pub fn try_recv(&self) -> Option<T> {
            self.shared.state.lock().unwrap().queue.pop_front()
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            // Take the undelivered messages out before marking the channel
            // dead, and drop them *outside* the lock: their destructors run
            // (releasing e.g. oneshot reply senders so callers observe
            // Canceled instead of hanging) without holding the queue mutex.
            let orphans = {
                let mut state = self.shared.state.lock().unwrap();
                state.receiver_alive = false;
                std::mem::take(&mut state.queue)
            };
            drop(orphans);
        }
    }
}

// ---------------------------------------------------------------------------
// actor: one dedicated message-loop thread per component.
// ---------------------------------------------------------------------------

pub mod actor {
    use super::{census, mpsc, oneshot};
    use std::time::Duration;

    /// Why a [`Handle::call_timeout`] did not produce a reply.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum CallError {
        /// The actor died (or dropped the message) before replying.
        Canceled,
        /// The actor is alive but did not reply within the deadline — it is
        /// wedged on an earlier message or simply backlogged. The message
        /// stays in the mailbox and may still be processed later; the reply
        /// is discarded.
        TimedOut,
    }

    impl std::fmt::Display for CallError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                CallError::Canceled => write!(f, "actor is gone (call canceled)"),
                CallError::TimedOut => write!(f, "actor did not reply within the deadline"),
            }
        }
    }

    impl std::error::Error for CallError {}

    /// Cloneable handle to an actor's mailbox. When the last handle drops,
    /// the mailbox disconnects and the actor loop exits after draining
    /// whatever was already enqueued.
    pub struct Handle<M> {
        tx: mpsc::Sender<M>,
    }

    impl<M> Clone for Handle<M> {
        fn clone(&self) -> Self {
            Handle {
                tx: self.tx.clone(),
            }
        }
    }

    impl<M: Send + 'static> Handle<M> {
        /// Fire-and-forget enqueue. Returns false if the actor is gone.
        pub fn send(&self, msg: M) -> bool {
            self.tx.send(msg).is_ok()
        }

        /// Request/reply: build a message around a fresh reply sender,
        /// enqueue it, and block for the reply. `Err(Canceled)` if the actor
        /// died (or dropped the message) before replying — never a hang.
        pub fn call<R: Send + 'static>(
            &self,
            make: impl FnOnce(oneshot::Sender<R>) -> M,
        ) -> Result<R, oneshot::Canceled> {
            let (tx, rx) = oneshot::channel();
            if self.tx.send(make(tx)).is_err() {
                return Err(oneshot::Canceled);
            }
            rx.recv()
        }

        /// [`Handle::call`], but bounded: give up after `timeout` with a
        /// typed error instead of blocking on a wedged actor forever. On
        /// [`CallError::TimedOut`] the message remains enqueued — the actor
        /// may still process it; the reply goes nowhere.
        pub fn call_timeout<R: Send + 'static>(
            &self,
            timeout: Duration,
            make: impl FnOnce(oneshot::Sender<R>) -> M,
        ) -> Result<R, CallError> {
            let (tx, rx) = oneshot::channel();
            if self.tx.send(make(tx)).is_err() {
                return Err(CallError::Canceled);
            }
            match rx.recv_timeout(timeout) {
                Ok(v) => Ok(v),
                Err(oneshot::TryRecvError::Canceled) => Err(CallError::Canceled),
                Err(oneshot::TryRecvError::Empty) => Err(CallError::TimedOut),
            }
        }
    }

    /// Spawn a message-loop actor owning `state` on a dedicated,
    /// census-registered thread. Mailbox order is FIFO, so e.g. a `kill`
    /// enqueued before a `put` is observed by the `put`.
    pub fn spawn<S, M>(
        name: &str,
        state: S,
        mut handler: impl FnMut(&mut S, M) + Send + 'static,
    ) -> Handle<M>
    where
        S: Send + 'static,
        M: Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        std::thread::Builder::new()
            .name(format!("actor-{name}"))
            .spawn(move || {
                let _census = census::Registration::new();
                let mut state = state;
                while let Ok(msg) = rx.recv() {
                    handler(&mut state, msg);
                }
            })
            .expect("spawn actor thread");
        Handle { tx }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawn_and_join_returns_value() {
        let h = spawn(|| 21 * 2);
        assert_eq!(h.join(), 42);
    }

    #[test]
    fn block_on_runs_to_completion() {
        assert_eq!(block_on(|| "done".to_string()), "done");
    }

    #[test]
    fn join_all_preserves_order() {
        let handles: Vec<_> = (0..32).map(|i| spawn(move || i * i)).collect();
        let out = join_all(handles);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn select_ready_returns_a_finished_handle() {
        let mut handles: Vec<_> = (0..4)
            .map(|i| {
                spawn(move || {
                    std::thread::sleep(Duration::from_millis(i * 5));
                    i
                })
            })
            .collect();
        let mut seen = Vec::new();
        while let Some((_, v)) = select_ready(&mut handles) {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn spawned_panic_propagates_on_join() {
        spawn(|| panic!("boom")).join()
    }

    #[test]
    fn scope_tasks_borrow_stack_state() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let total = AtomicUsize::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|| {
                    total.fetch_add(chunk.iter().sum::<u64>() as usize, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 36);
    }

    #[test]
    fn scope_handles_return_values_in_order() {
        let squares: Vec<u64> = scope(|s| {
            let handles: Vec<_> = (0..16u64).map(|i| s.spawn(move || i * i)).collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        assert_eq!(squares, (0..16u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scopes_on_the_fixed_pool_do_not_deadlock() {
        // More blocking joins than pool workers: only sound because blocked
        // tasks help run the queue.
        let n = worker_count() * 4;
        let total: usize = scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    s.spawn(|| {
                        scope(|inner| {
                            let hs: Vec<_> = (0..4).map(|i| inner.spawn(move || i)).collect();
                            hs.into_iter().map(|h| h.join()).sum::<usize>()
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).sum()
        });
        assert_eq!(total, n * 6);
    }

    #[test]
    #[should_panic(expected = "scoped boom")]
    fn scope_propagates_task_panic() {
        scope(|s| {
            s.spawn(|| panic!("scoped boom"));
        });
    }

    #[test]
    fn oneshot_cancel_on_sender_drop() {
        let (tx, rx) = oneshot::channel::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(oneshot::Canceled));
    }

    #[test]
    fn actor_processes_messages_in_fifo_order() {
        enum Msg {
            Add(u64),
            Get(oneshot::Sender<u64>),
        }
        let h = actor::spawn("adder", 0u64, |total, msg| match msg {
            Msg::Add(n) => *total += n,
            Msg::Get(reply) => {
                let _ = reply.send(*total);
            }
        });
        for i in 1..=10 {
            assert!(h.send(Msg::Add(i)));
        }
        assert_eq!(h.call(Msg::Get), Ok(55));
    }

    #[test]
    fn actor_shutdown_drains_then_cancels_no_hang() {
        enum Msg {
            Slow(oneshot::Sender<u32>),
        }
        let h = actor::spawn("slowpoke", (), |_, Msg::Slow(reply)| {
            std::thread::sleep(Duration::from_millis(20));
            let _ = reply.send(7);
        });
        // Queue a call, then drop the handle while the actor is mid-message:
        // the enqueued message is still served (drain-on-disconnect).
        let (tx, rx) = oneshot::channel();
        assert!(h.send(Msg::Slow(tx)));
        drop(h);
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn call_timeout_surfaces_a_wedged_actor() {
        enum Msg {
            Stall(std::sync::mpsc::Receiver<()>),
            Ask(oneshot::Sender<u32>),
        }
        let h = actor::spawn("wedged", (), |_, msg| match msg {
            Msg::Stall(gate) => {
                // Deliberately wedge the loop until the test opens the gate.
                let _ = gate.recv();
            }
            Msg::Ask(reply) => {
                let _ = reply.send(9);
            }
        });
        let (gate_tx, gate_rx) = std::sync::mpsc::channel();
        assert!(h.send(Msg::Stall(gate_rx)));
        // The actor is stuck behind the stall: a bounded call returns a
        // typed timeout instead of blocking its caller forever.
        assert_eq!(
            h.call_timeout(Duration::from_millis(30), Msg::Ask),
            Err(actor::CallError::TimedOut)
        );
        // Unwedge; the queued Ask is still in the mailbox and the actor
        // recovers — a fresh bounded call succeeds.
        gate_tx.send(()).unwrap();
        assert_eq!(h.call_timeout(Duration::from_secs(5), Msg::Ask), Ok(9));
    }

    #[test]
    fn call_timeout_reports_canceled_when_actor_is_gone() {
        enum Msg {
            Explode,
            Ask(oneshot::Sender<u32>),
        }
        let h = actor::spawn("ephemeral", (), |_, msg| match msg {
            Msg::Explode => panic!("actor died"),
            Msg::Ask(reply) => {
                let _ = reply.send(3);
            }
        });
        assert_eq!(h.call_timeout(Duration::from_secs(5), Msg::Ask), Ok(3));
        // The panic kills the loop; the Ask behind it is dropped unprocessed
        // and its reply sender with it — typed Canceled, not a hang.
        assert!(h.send(Msg::Explode));
        assert_eq!(
            h.call_timeout(Duration::from_secs(5), Msg::Ask),
            Err(actor::CallError::Canceled)
        );
    }

    #[test]
    fn actor_death_cancels_pending_repliers_instead_of_hanging() {
        enum Msg {
            Explode,
            Ask(oneshot::Sender<u32>),
        }
        let h = actor::spawn("fragile", (), |_, msg| match msg {
            Msg::Explode => panic!("actor died"),
            Msg::Ask(reply) => {
                let _ = reply.send(1);
            }
        });
        // The panic kills the loop; the message behind it is dropped
        // unprocessed and its reply sender with it — the caller must see
        // Canceled, not a hang.
        assert!(h.send(Msg::Explode));
        assert_eq!(h.call(Msg::Ask), Err(oneshot::Canceled));
    }

    #[test]
    fn census_counts_workers_and_actors() {
        let before = census::spawned();
        let h = actor::spawn("census-probe", (), |_, ()| {});
        h.send(());
        drop(h);
        // The actor registered itself; peak covers at least one live thread.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while census::spawned() <= before && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(census::spawned() > before);
        assert!(census::peak() >= 1);
    }
}
