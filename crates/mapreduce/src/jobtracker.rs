//! The jobtracker: job orchestration over the tasktrackers.
//!
//! The jobtracker is the "single master" of the Hadoop architecture the paper
//! describes (§II-A): it splits the input, hands map tasks to tasktrackers
//! (preferring trackers whose node holds the split's data), re-executes
//! failed tasks, schedules the reduce tasks and reports job-level counters.
//! Tasktracker slots execute as scoped tasks on the shared `miniexec` worker
//! pool — concurrent access to the storage layer is genuinely concurrent,
//! but bounded by the pool width rather than by `trackers x slots` dedicated
//! threads.
//!
//! Intermediate data flows through the storage layer ([`crate::shuffle`]):
//! map tasks spill sorted, partition-bucketed files under
//! `<output>/_shuffle/`, and reduce tasks pull their partition's segment from
//! every committed map file with positioned reads — starting as soon as
//! individual map outputs commit, not behind a global map barrier. All task
//! output (spills and `part-*` files alike) goes through the
//! write-to-`_temporary`-then-rename commit protocol, so retried attempts
//! never leave partial or duplicate files. The original collect-everything-
//! in-RAM shuffle survives as [`JobTracker::run_inmem`], the sequential
//! differential-testing oracle.
//!
//! ## Stragglers and speculative execution
//!
//! Per-task bookkeeping is the [`TaskBook`] attempt state machine: a task
//! may have several concurrent attempts (retries, and — when the job
//! configures a [`SpeculationPolicy`](crate::scheduler::SpeculationPolicy) —
//! speculative clones of stragglers, launched by *idle* worker slots onto a
//! different node than the incumbent attempt). Whichever attempt finishes
//! first commits by renaming its `_temporary` scratch into the final path
//! *while holding the phase lock*, so exactly one attempt ever wins; the
//! loser's scratch is deleted and none of its counters (input records,
//! locality, shuffle round trips) are merged into the [`JobResult`] — only
//! the [`SpeculationCounters`] record the waste. All timing goes through an
//! injectable [`Clock`] ([`WallClock`] by default), so straggler scenarios
//! are tested deterministically on a [`simcluster::clock::SimClock`] without
//! wall-clock sleeps.

use crate::error::{MrError, MrResult};
use crate::fs::DistFs;
use crate::job::Job;
use crate::scheduler::{classify, pick_map_task, Locality, LocalityCounters};
use crate::shuffle;
use crate::split::{compute_splits, InputSplit};
use crate::tasktracker::{
    group_by_key, run_map_task, run_reduce_task, write_output_file, FailureVerdict, MapTaskOutput,
    SpeculationCounters, TaskAttemptId, TaskBook, TaskTracker,
};
use parking_lot::Mutex;
use simcluster::clock::{Clock, WallClock};
use simcluster::topology::ClusterTopology;
use simcluster::NodeId;
use std::sync::Arc;
use std::time::Duration;
use wire::{Direction, Transport, MSG_OVERHEAD};

/// Counters of the storage-materialized shuffle, the analogue of Hadoop's
/// spilled-records / shuffle-bytes job counters. All zero for map-only jobs
/// and for [`JobTracker::run_inmem`] (which moves no intermediate bytes
/// through storage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleCounters {
    /// Bytes of spill files written by map tasks (headers included).
    pub spill_bytes: u64,
    /// Intermediate records written to spill files (post-combine).
    pub spill_records: u64,
    /// Records fed into the combiner at spill time (0 without a combiner).
    pub combine_input_records: u64,
    /// Records the combiner emitted.
    pub combine_output_records: u64,
    /// Map-output segments pulled by reduce tasks (one per map x reduce pair
    /// per successful attempt).
    pub segments_fetched: u64,
    /// Non-empty sorted runs fed to the reducers' k-way merges.
    pub merge_runs: u64,
    /// Positioned reads issued by segment fetches (index + payload reads).
    pub shuffle_read_round_trips: u64,
    /// Bytes moved by segment fetches.
    pub shuffle_read_bytes: u64,
    /// Merged runs committed by the spill compactor (0 with compaction off).
    pub compaction_runs: u64,
    /// Map spills folded into merged runs by the compactor.
    pub compaction_merged_spills: u64,
    /// Bytes of merged-run files the compactor wrote.
    pub compaction_bytes: u64,
}

impl ShuffleCounters {
    /// Project the shuffle's data-plane traffic onto the shared
    /// [`wire::CountersSnapshot`] schema used by every other boundary in
    /// the stack: each positioned segment read is one read message whose
    /// request is framing-only and whose response carries the fetched
    /// bytes. Spill and compaction writes are local to the map node and
    /// move nothing over this wire.
    pub fn wire_snapshot(&self) -> wire::CountersSnapshot {
        let sent = self.shuffle_read_round_trips * MSG_OVERHEAD;
        let received = self.shuffle_read_bytes + self.shuffle_read_round_trips * MSG_OVERHEAD;
        wire::CountersSnapshot {
            messages: self.shuffle_read_round_trips,
            read_messages: self.shuffle_read_round_trips,
            write_messages: 0,
            bytes_sent: sent,
            bytes_received: received,
            bytes_on_wire: sent + received,
        }
    }
}

/// Job-level counters and outcome, the analogue of Hadoop's job report.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Name of the job.
    pub job_name: String,
    /// Name of the storage backend the job ran over ("BSFS" / "HDFS").
    pub fs_name: String,
    /// Number of map tasks executed.
    pub map_tasks: usize,
    /// Number of reduce tasks executed.
    pub reduce_tasks: usize,
    /// Map-task locality breakdown (winning attempts only).
    pub locality: LocalityCounters,
    /// Task attempts that failed and were retried.
    pub task_retries: usize,
    /// Input records consumed by the map phase (winning attempts only —
    /// losing speculative attempts re-read the same splits, but their
    /// counters are discarded with their output).
    pub input_records: u64,
    /// Records produced by the reduce phase (or the map phase for map-only
    /// jobs).
    pub output_records: u64,
    /// Bytes read from the storage layer by map tasks.
    pub input_bytes: u64,
    /// Bytes written to the storage layer by output tasks.
    pub output_bytes: u64,
    /// Counters of the storage-materialized shuffle.
    pub shuffle: ShuffleCounters,
    /// Speculative-execution outcome (launches, wins, wasted work), summed
    /// over both phases. All zero when the job sets no speculation policy.
    pub speculation: SpeculationCounters,
    /// Duration of the job on the jobtracker's [`Clock`]: wall-clock time in
    /// production, virtual time under a `SimClock`. Measured to the commit of
    /// the last task, not to the exit of losing speculative attempts.
    pub elapsed: Duration,
    /// Paths of the `part-*` output files.
    pub output_files: Vec<String>,
}

impl JobResult {
    /// Completion time in seconds (the metric the paper reports for the
    /// application experiments).
    pub fn completion_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// The framework master.
pub struct JobTracker {
    topology: ClusterTopology,
    trackers: Vec<TaskTracker>,
    clock: Arc<dyn Clock>,
    control: Option<ControlWire>,
}

/// The jobtracker <-> tasktracker control channel. When a transport is
/// attached ([`JobTracker::with_transport`]), every task claim and every
/// attempt-outcome report is charged as one small framed exchange between
/// the slot's node and the jobtracker's home node — the heartbeat-carried
/// RPCs of the Hadoop protocol. Control messages carry bookkeeping, not
/// data, so both directions are framing-only.
struct ControlWire {
    transport: Arc<dyn Transport>,
    counters: wire::Counters,
    jt_node: NodeId,
}

impl ControlWire {
    /// A slot asks the jobtracker for work: request out, assignment back.
    fn charge_claim(&self, tracker: NodeId) {
        self.counters
            .record(Direction::Read, MSG_OVERHEAD, MSG_OVERHEAD);
        self.transport.exchange(
            tracker,
            self.jt_node,
            Direction::Read,
            MSG_OVERHEAD,
            MSG_OVERHEAD,
        );
    }

    /// A slot reports an attempt outcome: status out, ack back.
    fn charge_report(&self, tracker: NodeId) {
        self.counters
            .record(Direction::Write, MSG_OVERHEAD, MSG_OVERHEAD);
        self.transport.exchange(
            tracker,
            self.jt_node,
            Direction::Write,
            MSG_OVERHEAD,
            MSG_OVERHEAD,
        );
    }
}

/// Where a reduce task pulls one merge source from: a single map's spill, or
/// a merged run the compactor built from a contiguous map-id range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchSource {
    /// The committed spill of map task `map_id`.
    Spill { map_id: usize },
    /// A merged run compacted from spills `start..start + len`.
    Run { start: usize, len: usize },
}

impl FetchSource {
    /// First map id the source covers. Sources cover disjoint contiguous
    /// ranges, so ordering fetched runs by this restores global map-id order
    /// — which the k-way merge's tie-break needs to reproduce the oracle.
    fn start(&self) -> usize {
        match *self {
            FetchSource::Spill { map_id } => map_id,
            FetchSource::Run { start, .. } => start,
        }
    }

    /// Number of map tasks the source covers.
    fn len(&self) -> usize {
        match *self {
            FetchSource::Spill { .. } => 1,
            FetchSource::Run { len, .. } => len,
        }
    }

    /// The committed file the source lives in.
    fn path(&self, output_dir: &str) -> String {
        match *self {
            FetchSource::Spill { map_id } => shuffle::spill_path(output_dir, map_id),
            FetchSource::Run { start, len } => shuffle::run_path(output_dir, start, len),
        }
    }
}

/// Minimum contiguous committed spills a compactor merges while map tasks
/// are still running; once the map phase is done any leftover pair is worth
/// merging, and isolated singles are published unmerged.
const COMPACTION_MIN_BATCH: usize = 4;

/// Merge-spill compaction bookkeeping, guarded by the map-phase mutex.
///
/// Compaction only ever merges *contiguous* map-id ranges: the k-way merge
/// breaks key ties toward the lower run index, so a run interleaving map ids
/// with its neighbours would put equal keys out of the oracle's
/// (map id, emit order) sequence. Contiguous ranges keep every record of run
/// A strictly before or after every record of run B in map-id terms.
struct CompactionPlan {
    /// Compaction is active for this job (threshold exceeded, reducers
    /// exist).
    enabled: bool,
    /// Per-map flag: the spill is claimed by a compactor or already
    /// published as a fetch source. Never cleared — a failed compaction
    /// publishes its claimed spills unmerged instead of unclaiming them.
    claimed: Vec<bool>,
    /// Published fetch sources in publication order. Grows monotonically;
    /// reducers consume it as a queue and never see an entry retracted.
    sources: Vec<FetchSource>,
    /// Sum of source lengths: how many map tasks the sources cover so far.
    covered: usize,
    /// Scratch-name sequence for compactor attempts.
    attempt_seq: usize,
    /// Merged runs committed.
    runs: u64,
    /// Spills folded into merged runs.
    merged_spills: u64,
    /// Bytes of merged-run files written.
    bytes: u64,
}

impl CompactionPlan {
    fn new(enabled: bool, num_maps: usize) -> Self {
        CompactionPlan {
            enabled,
            claimed: vec![false; num_maps],
            sources: Vec::new(),
            covered: 0,
            attempt_seq: 0,
            runs: 0,
            merged_spills: 0,
            bytes: 0,
        }
    }

    /// Every committed spill is covered by a published source (reducers can
    /// finish without further compactor progress).
    fn complete(&self) -> bool {
        !self.enabled || self.covered == self.claimed.len()
    }
}

/// Shared map-phase state guarded by one mutex.
struct MapPhase {
    /// The attempt state machine: pending/running/committed tasks.
    book: TaskBook,
    /// Per-task counters of the *winning* attempt, filled as tasks commit
    /// (`partitions` cleared — the data lives in the spill files).
    results: Vec<Option<MapTaskOutput>>,
    failure: Option<MrError>,
    locality: LocalityCounters,
    /// Output bytes written directly by map tasks (map-only jobs).
    map_output_bytes: u64,
    map_output_records: u64,
    output_files: Vec<String>,
    /// Clock reading when the last task committed (map-only jobs).
    finished_at: Option<Duration>,
    /// Merge-spill compaction state (inert when disabled).
    plan: CompactionPlan,
}

/// Shared reduce-phase state.
struct ReducePhase {
    book: TaskBook,
    failure: Option<MrError>,
    output_bytes: u64,
    output_records: u64,
    output_files: Vec<String>,
    segments_fetched: u64,
    merge_runs: u64,
    read_round_trips: u64,
    read_bytes: u64,
    /// Clock reading when the last partition committed.
    finished_at: Option<Duration>,
}

impl JobTracker {
    /// Create a jobtracker over one tasktracker per node of the topology,
    /// with default slot counts and the production [`WallClock`].
    pub fn new(topology: &ClusterTopology) -> Self {
        let trackers = topology.all_nodes().map(TaskTracker::new).collect();
        JobTracker {
            topology: topology.clone(),
            trackers,
            clock: Arc::new(WallClock::new()),
            control: None,
        }
    }

    /// Create a jobtracker over an explicit set of tasktrackers.
    pub fn with_trackers(topology: &ClusterTopology, trackers: Vec<TaskTracker>) -> Self {
        assert!(!trackers.is_empty(), "at least one tasktracker is required");
        JobTracker {
            topology: topology.clone(),
            trackers,
            clock: Arc::new(WallClock::new()),
            control: None,
        }
    }

    /// Builder-style clock override: job timing (attempt runtimes, straggler
    /// detection, reported completion time) reads this clock. Tests inject a
    /// [`simcluster::clock::SimClock`] here.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Builder-style transport attachment for the control plane: once set,
    /// every task claim and outcome report between a tasktracker slot and
    /// the jobtracker is charged as one small framed exchange on
    /// `transport`, with the jobtracker homed at `jt_node`. With a
    /// [`wire::SimNet`] this puts the master on the simulated network, so
    /// its latency shows up in job makespans; control traffic is metered in
    /// [`JobTracker::control_counters`].
    pub fn with_transport(mut self, transport: Arc<dyn Transport>, jt_node: NodeId) -> Self {
        self.control = Some(ControlWire {
            transport,
            counters: wire::Counters::new(),
            jt_node,
        });
        self
    }

    /// Control-plane wire counters: claims are read exchanges, outcome
    /// reports are writes. `None` until [`JobTracker::with_transport`].
    pub fn control_counters(&self) -> Option<&wire::Counters> {
        self.control.as_ref().map(|c| &c.counters)
    }

    /// The tasktrackers this jobtracker drives.
    pub fn trackers(&self) -> &[TaskTracker] {
        &self.trackers
    }

    /// The cluster topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Validate the job's output location and expand its input into splits.
    fn prepare(&self, fs: &dyn DistFs, job: &Job) -> MrResult<Vec<InputSplit>> {
        let config = &job.config;
        if config.output_dir.is_empty() {
            return Err(MrError::InvalidJob(
                "output directory must not be empty".into(),
            ));
        }
        if fs.exists(&config.output_dir) {
            return Err(MrError::OutputExists(config.output_dir.clone()));
        }
        fs.mkdirs(&config.output_dir)?;
        compute_splits(fs, &config.input, config.split_size)
    }

    /// Run a job over the given storage backend and return its report.
    ///
    /// This is the storage-materialized data path: map outputs spill through
    /// `fs`, reduce tasks pull segments with positioned reads as the spills
    /// commit, and every task output is rename-committed.
    pub fn run(&self, fs: &dyn DistFs, job: &Job) -> MrResult<JobResult> {
        let clock = &*self.clock;
        let start = clock.now();
        let config = &job.config;
        let splits = self.prepare(fs, job)?;
        let num_maps = splits.len();
        let map_only = config.num_reducers == 0;
        let partitions = if map_only { 1 } else { config.num_reducers };
        fs.mkdirs(&shuffle::temporary_dir(&config.output_dir))?;
        if !map_only {
            fs.mkdirs(&shuffle::shuffle_dir(&config.output_dir))?;
        }
        let compaction = !map_only && config.compaction_threshold.is_some_and(|t| num_maps > t);

        let map_state = Mutex::new(MapPhase {
            book: TaskBook::new(num_maps),
            results: (0..num_maps).map(|_| None).collect(),
            failure: None,
            locality: LocalityCounters::default(),
            map_output_bytes: 0,
            map_output_records: 0,
            output_files: Vec::new(),
            finished_at: None,
            plan: CompactionPlan::new(compaction, num_maps),
        });
        let reduce_state = Mutex::new(ReducePhase {
            book: TaskBook::new(partitions),
            failure: None,
            output_bytes: 0,
            output_records: 0,
            output_files: Vec::new(),
            segments_fetched: 0,
            merge_runs: 0,
            read_round_trips: 0,
            read_bytes: 0,
            finished_at: None,
        });

        // One batch of slot loops for both phases: reduce slots start pulling
        // committed segments while map slots are still running. The loops are
        // built once and handed to the configured dispatcher — scoped tasks on
        // the shared executor pool, or (legacy) one scoped OS thread each.
        let mut slots: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        let control = self.control.as_ref();
        for tracker in &self.trackers {
            for _slot in 0..tracker.map_slots {
                let map_state = &map_state;
                let splits = &splits;
                let topology = &self.topology;
                let tracker = *tracker;
                let output_dir = config.output_dir.clone();
                let max_attempts = config.max_task_attempts;
                // Each slot gets a storage handle bound to the tracker's
                // node, so its I/O originates there.
                let local_fs = fs.on_node(tracker.node);
                slots.push(Box::new(move || {
                    map_worker_loop(
                        &*local_fs,
                        topology,
                        tracker,
                        splits,
                        job,
                        partitions,
                        map_only,
                        &output_dir,
                        max_attempts,
                        clock,
                        control,
                        map_state,
                    );
                }));
            }
            if !map_only {
                for _slot in 0..tracker.reduce_slots {
                    let map_state = &map_state;
                    let reduce_state = &reduce_state;
                    let node = tracker.node;
                    let output_dir = config.output_dir.clone();
                    let max_attempts = config.max_task_attempts;
                    let local_fs = fs.on_node(node);
                    slots.push(Box::new(move || {
                        reduce_worker_loop(
                            &*local_fs,
                            job,
                            node,
                            &output_dir,
                            num_maps,
                            partitions,
                            max_attempts,
                            clock,
                            control,
                            map_state,
                            reduce_state,
                        );
                    }));
                }
            }
        }
        miniexec::scope_blocking(|scope| {
            for slot in slots {
                scope.spawn(slot);
            }
        });

        let mut map_state = map_state.into_inner();
        if let Some(err) = map_state.failure.take() {
            // Failed jobs leave their committed part files for post-mortem
            // (as Hadoop does), but not the shuffle/scratch debris.
            shuffle::cleanup_job_dirs(fs, &config.output_dir);
            return Err(err);
        }
        let map_speculation = map_state.book.speculation();
        let map_retries = map_state.book.retries();
        let map_outputs: Vec<MapTaskOutput> = map_state
            .results
            .into_iter()
            .map(|r| r.expect("all map tasks finished"))
            .collect();
        let input_records: u64 = map_outputs.iter().map(|o| o.records_read).sum();
        let input_bytes: u64 = map_outputs.iter().map(|o| o.bytes_read).sum();
        let mut counters = ShuffleCounters::default();
        for o in &map_outputs {
            counters.spill_bytes += o.spilled_bytes;
            counters.spill_records += o.spilled_records;
            counters.combine_input_records += o.combine_input_records;
            counters.combine_output_records += o.combine_output_records;
        }

        if map_only {
            let _ = fs.delete(&shuffle::temporary_dir(&config.output_dir), true);
            let finish = map_state.finished_at.unwrap_or_else(|| clock.now());
            let mut output_files = map_state.output_files;
            output_files.sort();
            return Ok(JobResult {
                job_name: config.name.clone(),
                fs_name: fs.name().to_string(),
                map_tasks: num_maps,
                reduce_tasks: 0,
                locality: map_state.locality,
                task_retries: map_retries,
                input_records,
                output_records: map_state.map_output_records,
                input_bytes,
                output_bytes: map_state.map_output_bytes,
                shuffle: counters,
                speculation: map_speculation,
                elapsed: finish.saturating_sub(start),
                output_files,
            });
        }

        let mut reduce_state = reduce_state.into_inner();
        if let Some(err) = reduce_state.failure.take() {
            shuffle::cleanup_job_dirs(fs, &config.output_dir);
            return Err(err);
        }
        counters.segments_fetched = reduce_state.segments_fetched;
        counters.merge_runs = reduce_state.merge_runs;
        counters.shuffle_read_round_trips = reduce_state.read_round_trips;
        counters.shuffle_read_bytes = reduce_state.read_bytes;
        counters.compaction_runs = map_state.plan.runs;
        counters.compaction_merged_spills = map_state.plan.merged_spills;
        counters.compaction_bytes = map_state.plan.bytes;
        let mut speculation = map_speculation;
        speculation.merge(&reduce_state.book.speculation());
        shuffle::cleanup_job_dirs(fs, &config.output_dir);
        let finish = reduce_state.finished_at.unwrap_or_else(|| clock.now());
        let mut output_files = reduce_state.output_files;
        output_files.sort();

        Ok(JobResult {
            job_name: config.name.clone(),
            fs_name: fs.name().to_string(),
            map_tasks: num_maps,
            reduce_tasks: partitions,
            locality: map_state.locality,
            task_retries: map_retries + reduce_state.book.retries(),
            input_records,
            output_records: reduce_state.output_records,
            input_bytes,
            output_bytes: reduce_state.output_bytes,
            shuffle: counters,
            speculation,
            elapsed: finish.saturating_sub(start),
            output_files,
        })
    }

    /// Run a job with the original in-memory shuffle: map outputs are
    /// collected in RAM, regrouped behind a global barrier, and reduce output
    /// is written directly to its final path. Sequential and dead simple —
    /// this is the differential-testing oracle the storage-materialized
    /// [`JobTracker::run`] must agree with byte-for-byte, mirroring the
    /// `lookup_range_walk` pattern of the metadata read path.
    pub fn run_inmem(&self, fs: &dyn DistFs, job: &Job) -> MrResult<JobResult> {
        let start = self.clock.now();
        let config = &job.config;
        let splits = self.prepare(fs, job)?;
        let num_maps = splits.len();
        let map_only = config.num_reducers == 0;
        let partitions = if map_only { 1 } else { config.num_reducers };

        let mut locality = LocalityCounters::default();
        let mut input_records = 0u64;
        let mut input_bytes = 0u64;
        let mut output_records = 0u64;
        let mut output_bytes = 0u64;
        let mut output_files = Vec::new();
        let mut partition_data: Vec<Vec<(String, String)>> = vec![Vec::new(); partitions];

        for split in &splits {
            let mut out = run_map_task(fs, split, &*job.mapper, &*job.partitioner, partitions)?;
            // The oracle runs every task at the submitting node.
            locality.record(Locality::Remote);
            input_records += out.records_read;
            input_bytes += out.bytes_read;
            if map_only {
                let records = std::mem::take(&mut out.partitions[0]);
                let path = format!("{}/part-m-{:05}", config.output_dir, split.id);
                output_bytes += write_output_file(fs, &path, &records)?;
                output_records += records.len() as u64;
                output_files.push(path);
            } else {
                for (p, mut bucket) in out.partitions.into_iter().enumerate() {
                    // Same per-map transformation as the spill path, so the
                    // reduce inputs are identical record streams.
                    shuffle::sort_run(&mut bucket);
                    if let Some(combiner) = &config.combiner {
                        bucket = shuffle::combine_run(bucket, &**combiner)?.records;
                    }
                    partition_data[p].extend(bucket);
                }
            }
        }

        if !map_only {
            for (p, pairs) in partition_data.into_iter().enumerate() {
                let grouped = group_by_key(pairs);
                let records = run_reduce_task(&grouped, &*job.reducer)?;
                let path = format!("{}/part-r-{p:05}", config.output_dir);
                output_bytes += write_output_file(fs, &path, &records)?;
                output_records += records.len() as u64;
                output_files.push(path);
            }
        }

        output_files.sort();
        Ok(JobResult {
            job_name: config.name.clone(),
            fs_name: fs.name().to_string(),
            map_tasks: num_maps,
            reduce_tasks: if map_only { 0 } else { partitions },
            locality,
            task_retries: 0,
            input_records,
            output_records,
            input_bytes,
            output_bytes,
            shuffle: ShuffleCounters::default(),
            speculation: SpeculationCounters::default(),
            elapsed: self.clock.now().saturating_sub(start),
            output_files,
        })
    }
}

/// Route a failed attempt through the book and surface a fatal verdict as
/// the phase failure. Shared by both phases and by rename-commit errors.
fn record_attempt_failure(
    book: &mut TaskBook,
    failure: &mut Option<MrError>,
    phase: &str,
    id: TaskAttemptId,
    err: &MrError,
    max_attempts: usize,
    now: Duration,
) {
    if let FailureVerdict::Fatal(attempts) = book.record_failure(id, now, max_attempts) {
        if failure.is_none() {
            *failure = Some(MrError::TaskFailed {
                task: format!("{phase}-{}", id.task),
                attempts,
                last_error: err.to_string(),
            });
        }
    }
}

/// What an idle map slot claimed: a map attempt, or a compaction batch.
enum MapWork {
    Task(TaskAttemptId, Locality),
    Compact {
        start: usize,
        len: usize,
        seq: usize,
    },
}

/// Claim the longest contiguous range of committed, unclaimed spills worth
/// compacting. Called under the phase lock. While map tasks are still in
/// flight the range must reach [`COMPACTION_MIN_BATCH`] (bigger batches are
/// coming); once all maps committed, any pair is merged and isolated
/// leftovers are published directly as unmerged spill sources.
fn claim_compaction(s: &mut MapPhase) -> Option<(usize, usize, usize)> {
    if !s.plan.enabled {
        return None;
    }
    let num_maps = s.plan.claimed.len();
    let map_phase_done = s.book.all_committed();
    loop {
        // Longest maximal run of committed-and-unclaimed map ids.
        let mut best: Option<(usize, usize)> = None;
        let mut i = 0;
        while i < num_maps {
            if s.book.is_committed(i) && !s.plan.claimed[i] {
                let start = i;
                while i < num_maps && s.book.is_committed(i) && !s.plan.claimed[i] {
                    i += 1;
                }
                let len = i - start;
                if best.is_none_or(|(_, best_len)| len > best_len) {
                    best = Some((start, len));
                }
            } else {
                i += 1;
            }
        }
        let (start, len) = best?;
        let min_len = if map_phase_done {
            2
        } else {
            COMPACTION_MIN_BATCH
        };
        if len >= min_len {
            for claimed in &mut s.plan.claimed[start..start + len] {
                *claimed = true;
            }
            s.plan.attempt_seq += 1;
            return Some((start, len, s.plan.attempt_seq));
        }
        if map_phase_done {
            // Too short to merge and no more commits are coming: publish the
            // range's spills as-is and look for another range.
            for map_id in start..start + len {
                s.plan.claimed[map_id] = true;
                s.plan.sources.push(FetchSource::Spill { map_id });
                s.plan.covered += 1;
            }
            continue;
        }
        return None;
    }
}

/// Compact the committed spills `start..start + len` into one merged run:
/// bulk-read each spill, k-way-merge per partition, write the result in
/// spill layout to `_temporary` scratch, and rename-commit under the phase
/// lock. On any error the constituent spills are published unmerged —
/// compaction is an optimization, never a point of failure; the committed
/// spills themselves are untouched either way.
fn run_compaction(
    fs: &dyn DistFs,
    output_dir: &str,
    partitions: usize,
    start: usize,
    len: usize,
    seq: usize,
    state: &Mutex<MapPhase>,
) {
    let task = format!("compact-{start:05}");
    let scratch = shuffle::attempt_path(output_dir, &task, seq);
    let outcome = (|| -> MrResult<u64> {
        let mut buckets: Vec<Vec<Vec<(String, String)>>> =
            (0..partitions).map(|_| Vec::with_capacity(len)).collect();
        for map_id in start..start + len {
            let path = shuffle::spill_path(output_dir, map_id);
            let spill = shuffle::read_spill_runs(fs, &path, partitions)?;
            for (p, bucket) in spill.partitions.into_iter().enumerate() {
                buckets[p].push(bucket);
            }
        }
        let merged: Vec<Vec<(String, String)>> =
            buckets.into_iter().map(shuffle::merge_runs).collect();
        let (bytes, _) = shuffle::write_spill(fs, &scratch, &merged)?;
        Ok(bytes)
    })();

    let mut s = state.lock();
    let published = match outcome {
        Ok(bytes) => match fs.rename(&scratch, &shuffle::run_path(output_dir, start, len)) {
            Ok(()) => {
                s.plan.sources.push(FetchSource::Run { start, len });
                s.plan.covered += len;
                s.plan.runs += 1;
                s.plan.merged_spills += len as u64;
                s.plan.bytes += bytes;
                true
            }
            Err(_) => false,
        },
        Err(_) => false,
    };
    if !published {
        for map_id in start..start + len {
            s.plan.sources.push(FetchSource::Spill { map_id });
        }
        s.plan.covered += len;
        drop(s);
        shuffle::discard_attempt(fs, output_dir, &task, seq);
    }
}

/// Worker loop executed by every map slot: claim a pending task (or a
/// speculative clone of a straggler when the job allows it), execute it,
/// write its output to the attempt's `_temporary` scratch, and rename-commit
/// under the phase lock — first finished attempt wins, losers are discarded.
/// With compaction enabled, idle slots also fold committed spills into
/// merged runs before falling back to speculation.
#[allow(clippy::too_many_arguments)]
fn map_worker_loop(
    fs: &dyn DistFs,
    topology: &ClusterTopology,
    tracker: TaskTracker,
    splits: &[InputSplit],
    job: &Job,
    partitions: usize,
    map_only: bool,
    output_dir: &str,
    max_attempts: usize,
    clock: &dyn Clock,
    control: Option<&ControlWire>,
    state: &Mutex<MapPhase>,
) {
    loop {
        // Claim an attempt (or decide to wait / exit).
        let claimed: Option<MapWork> = {
            let mut s = state.lock();
            if s.failure.is_some() || (s.book.all_committed() && s.plan.complete()) {
                return;
            }
            if let Some((pos, locality)) =
                pick_map_task(topology, tracker.node, s.book.pending(), splits)
            {
                Some(MapWork::Task(
                    s.book.claim_pending(pos, tracker.node, clock.now()),
                    locality,
                ))
            } else if let Some((start, len, seq)) = claim_compaction(&mut s) {
                // Nothing pending: fold committed spills into a merged run
                // so reducers fetch O(runs) segments instead of O(maps).
                Some(MapWork::Compact { start, len, seq })
            } else if let Some(policy) = job.config.speculation.as_deref() {
                // Still spare capacity — offer this slot a speculative clone
                // of the slowest qualifying straggler.
                s.book
                    .claim_speculative(tracker.node, clock.now(), policy)
                    .map(|id| MapWork::Task(id, classify(topology, tracker.node, &splits[id.task])))
            } else {
                None
            }
        };
        // Every successful claim is one control round trip to the master
        // (the empty poll is local slot idling, not a wire message).
        if claimed.is_some() {
            if let Some(cw) = control {
                cw.charge_claim(tracker.node);
            }
        }
        let (id, locality) = match claimed {
            Some(MapWork::Task(id, locality)) => (id, locality),
            Some(MapWork::Compact { start, len, seq }) => {
                run_compaction(fs, output_dir, partitions, start, len, seq, state);
                continue;
            }
            None => {
                // Tasks are running on other slots; one could fail (requeue)
                // or turn into a straggler, so poll until the phase settles.
                miniexec::poll_wait(Duration::from_millis(1));
                continue;
            }
        };
        let task = format!("map-{:05}", id.task);
        let scratch = shuffle::attempt_path(output_dir, &task, id.attempt);

        // Execute the attempt outside the lock, writing all output to the
        // scratch path. `part_written` carries (bytes, records) for map-only
        // jobs, whose tasks commit straight to a part file.
        let outcome = run_map_task(
            fs,
            &splits[id.task],
            &*job.mapper,
            &*job.partitioner,
            partitions,
        )
        .and_then(|mut output| {
            if map_only {
                let records = std::mem::take(&mut output.partitions[0]);
                let bytes = write_output_file(fs, &scratch, &records)?;
                Ok((output, (bytes, records.len() as u64)))
            } else {
                // Sort each bucket, run the spill-time combiner, and write
                // the spill image for the reducers to pull from.
                for bucket in output.partitions.iter_mut() {
                    shuffle::sort_run(bucket);
                }
                if let Some(combiner) = &job.config.combiner {
                    for bucket in output.partitions.iter_mut() {
                        let combined = shuffle::combine_run(std::mem::take(bucket), &**combiner)?;
                        output.combine_input_records += combined.input_records;
                        output.combine_output_records += combined.output_records;
                        *bucket = combined.records;
                    }
                }
                let (bytes, records) = shuffle::write_spill(fs, &scratch, &output.partitions)?;
                output.spilled_bytes = bytes;
                output.spilled_records = records;
                output.partitions.clear(); // the data now lives in the spill
                Ok((output, (0, 0)))
            }
        });

        // Commit arbitration under the phase lock: the first attempt of a
        // task to get here renames its scratch into place and merges its
        // counters; any later attempt is pure waste. Holding the lock across
        // the rename is what makes "exactly one winner" a hard invariant
        // (and keeps a rename failure from being misread as a lost race);
        // it is cheap because `DistFs::rename` is a metadata-only namespace
        // operation in every backend — the data bytes were already written
        // to scratch outside the lock.
        // The attempt reports its outcome (success or failure) before the
        // commit arbitration — charged outside the phase lock.
        if let Some(cw) = control {
            cw.charge_report(tracker.node);
        }
        let mut discard_scratch = true;
        {
            let mut s = state.lock();
            match outcome {
                Ok((output, (part_bytes, part_records))) => {
                    if s.book.is_committed(id.task) {
                        s.book.record_lost(id, clock.now());
                    } else {
                        let final_path = if map_only {
                            format!("{output_dir}/part-m-{:05}", id.task)
                        } else {
                            shuffle::spill_path(output_dir, id.task)
                        };
                        match fs.rename(&scratch, &final_path) {
                            Ok(()) => {
                                discard_scratch = false;
                                s.book.record_success(id, clock.now());
                                s.locality.record(locality);
                                if map_only {
                                    s.output_files.push(final_path);
                                    s.map_output_bytes += part_bytes;
                                    s.map_output_records += part_records;
                                }
                                s.results[id.task] = Some(output);
                                if s.book.all_committed() {
                                    s.finished_at = Some(clock.now());
                                }
                            }
                            Err(err) => {
                                let MapPhase { book, failure, .. } = &mut *s;
                                record_attempt_failure(
                                    book,
                                    failure,
                                    "map",
                                    id,
                                    &err,
                                    max_attempts,
                                    clock.now(),
                                );
                            }
                        }
                    }
                }
                Err(err) => {
                    let MapPhase { book, failure, .. } = &mut *s;
                    record_attempt_failure(
                        book,
                        failure,
                        "map",
                        id,
                        &err,
                        max_attempts,
                        clock.now(),
                    );
                }
            }
        }
        if discard_scratch {
            // Clean the attempt's scratch (failed or lost) before retries.
            shuffle::discard_attempt(fs, output_dir, &task, id.attempt);
        }
    }
}

/// What one successful reduce-side fetch collected.
struct FetchedPartition {
    /// One key-sorted run per fetch source (per map task without compaction,
    /// per merged run / leftover spill with it), in map-id order.
    runs: Vec<Vec<(String, String)>>,
    segments: u64,
    round_trips: u64,
    bytes: u64,
}

/// Pull partition `partition`'s segment from every map task's spill,
/// fetching each as soon as its map commits. Returns `Ok(None)` when the map
/// phase failed (the job is going down; nothing to reduce).
fn fetch_partition(
    fs: &dyn DistFs,
    output_dir: &str,
    partition: usize,
    num_maps: usize,
    partitions: usize,
    map_state: &Mutex<MapPhase>,
) -> MrResult<Option<FetchedPartition>> {
    if map_state.lock().plan.enabled {
        return fetch_partition_from_sources(
            fs, output_dir, partition, num_maps, partitions, map_state,
        );
    }
    let mut runs: Vec<Option<Vec<(String, String)>>> = (0..num_maps).map(|_| None).collect();
    let mut fetched = 0usize;
    let mut segments = 0u64;
    let mut round_trips = 0u64;
    let mut bytes = 0u64;
    while fetched < num_maps {
        let (available, map_failed) = {
            let m = map_state.lock();
            let available: Vec<usize> = (0..num_maps)
                .filter(|&i| m.book.is_committed(i) && runs[i].is_none())
                .collect();
            (available, m.failure.is_some())
        };
        if available.is_empty() {
            if map_failed {
                return Ok(None);
            }
            miniexec::poll_wait(Duration::from_millis(1));
            continue;
        }
        for map_id in available {
            let path = shuffle::spill_path(output_dir, map_id);
            let segment = shuffle::read_segment(fs, &path, partition, partitions)?;
            segments += 1;
            round_trips += segment.round_trips;
            bytes += segment.bytes;
            runs[map_id] = Some(segment.records);
            fetched += 1;
        }
    }
    Ok(Some(FetchedPartition {
        runs: runs
            .into_iter()
            .map(|r| r.expect("all segments fetched"))
            .collect(),
        segments,
        round_trips,
        bytes,
    }))
}

/// The compaction-aware fetch: consume the published fetch-source queue
/// (merged runs and leftover spills) until the sources cover every map task.
/// The queue only grows, so speculative attempts of one partition can
/// consume it independently.
fn fetch_partition_from_sources(
    fs: &dyn DistFs,
    output_dir: &str,
    partition: usize,
    num_maps: usize,
    partitions: usize,
    map_state: &Mutex<MapPhase>,
) -> MrResult<Option<FetchedPartition>> {
    let mut taken = 0usize;
    let mut covered = 0usize;
    let mut fetched: Vec<(usize, Vec<(String, String)>)> = Vec::new();
    let mut segments = 0u64;
    let mut round_trips = 0u64;
    let mut bytes = 0u64;
    while covered < num_maps {
        let (new_sources, map_failed) = {
            let m = map_state.lock();
            (m.plan.sources[taken..].to_vec(), m.failure.is_some())
        };
        if new_sources.is_empty() {
            if map_failed {
                return Ok(None);
            }
            miniexec::poll_wait(Duration::from_millis(1));
            continue;
        }
        taken += new_sources.len();
        for source in new_sources {
            let segment =
                shuffle::read_segment(fs, &source.path(output_dir), partition, partitions)?;
            segments += 1;
            round_trips += segment.round_trips;
            bytes += segment.bytes;
            covered += source.len();
            fetched.push((source.start(), segment.records));
        }
    }
    // Sources cover disjoint contiguous map-id ranges: ordering the runs by
    // range start restores global map-id order, so the k-way merge's
    // tie-break still reproduces the oracle's (map id, emit order) sequence.
    fetched.sort_by_key(|&(start, _)| start);
    Ok(Some(FetchedPartition {
        runs: fetched.into_iter().map(|(_, records)| records).collect(),
        segments,
        round_trips,
        bytes,
    }))
}

/// Worker loop executed by every reduce slot: claim a partition (or a
/// speculative clone of a straggling one), pull its segments as map spills
/// commit, k-way-merge the sorted runs, reduce, and rename-commit the part
/// file under the phase lock — first finished attempt wins.
#[allow(clippy::too_many_arguments)]
fn reduce_worker_loop(
    fs: &dyn DistFs,
    job: &Job,
    node: NodeId,
    output_dir: &str,
    num_maps: usize,
    partitions: usize,
    max_attempts: usize,
    clock: &dyn Clock,
    control: Option<&ControlWire>,
    map_state: &Mutex<MapPhase>,
    state: &Mutex<ReducePhase>,
) {
    loop {
        // The job is failing once either phase records a permanent failure.
        if map_state.lock().failure.is_some() {
            return;
        }
        let claimed = {
            let mut s = state.lock();
            if s.failure.is_some() || s.book.all_committed() {
                return;
            }
            if !s.book.pending().is_empty() {
                let pos = s.book.pending().len() - 1;
                Some(s.book.claim_pending(pos, node, clock.now()))
            } else if let Some(policy) = job.config.speculation.as_deref() {
                s.book.claim_speculative(node, clock.now(), policy)
            } else {
                None
            }
        };
        let id = match claimed {
            Some(c) => {
                // One control round trip per claim, as on the map side.
                if let Some(cw) = control {
                    cw.charge_claim(node);
                }
                c
            }
            None => {
                // Partitions are running on other slots; one could fail and
                // requeue, so poll until the phase settles.
                miniexec::poll_wait(Duration::from_millis(1));
                continue;
            }
        };
        let task = format!("reduce-{:05}", id.task);
        let scratch = shuffle::attempt_path(output_dir, &task, id.attempt);

        let outcome = fetch_partition(fs, output_dir, id.task, num_maps, partitions, map_state)
            .and_then(|fetched| {
                let Some(fetched) = fetched else {
                    return Ok(None); // map phase failed; abort quietly
                };
                let merge_runs = fetched.runs.iter().filter(|r| !r.is_empty()).count() as u64;
                let merged = shuffle::merge_runs(fetched.runs);
                let records = shuffle::reduce_merged(merged, &*job.reducer)?;
                let bytes = write_output_file(fs, &scratch, &records)?;
                Ok(Some((
                    bytes,
                    records.len() as u64,
                    fetched.segments,
                    merge_runs,
                    fetched.round_trips,
                    fetched.bytes,
                )))
            });

        // Report the attempt outcome to the master before arbitration.
        if let Some(cw) = control {
            cw.charge_report(node);
        }
        let mut discard_scratch = true;
        {
            let mut s = state.lock();
            match outcome {
                Ok(None) => {
                    // Map phase failed; the job is going down. Close the
                    // attempt's bookkeeping so nothing stays `Running`.
                    s.book.record_abandoned(id);
                    return;
                }
                Ok(Some((bytes, records, segments, merge_runs, round_trips, read_bytes))) => {
                    if s.book.is_committed(id.task) {
                        s.book.record_lost(id, clock.now());
                    } else {
                        let final_path = format!("{output_dir}/part-r-{:05}", id.task);
                        match fs.rename(&scratch, &final_path) {
                            Ok(()) => {
                                discard_scratch = false;
                                s.book.record_success(id, clock.now());
                                s.output_bytes += bytes;
                                s.output_records += records;
                                s.output_files.push(final_path);
                                s.segments_fetched += segments;
                                s.merge_runs += merge_runs;
                                s.read_round_trips += round_trips;
                                s.read_bytes += read_bytes;
                                if s.book.all_committed() {
                                    s.finished_at = Some(clock.now());
                                }
                            }
                            Err(err) => {
                                let ReducePhase { book, failure, .. } = &mut *s;
                                record_attempt_failure(
                                    book,
                                    failure,
                                    "reduce",
                                    id,
                                    &err,
                                    max_attempts,
                                    clock.now(),
                                );
                            }
                        }
                    }
                }
                Err(err) => {
                    let ReducePhase { book, failure, .. } = &mut *s;
                    record_attempt_failure(
                        book,
                        failure,
                        "reduce",
                        id,
                        &err,
                        max_attempts,
                        clock.now(),
                    );
                }
            }
        }
        if discard_scratch {
            shuffle::discard_attempt(fs, output_dir, &task, id.attempt);
        }
    }
}
