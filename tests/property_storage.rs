//! Property-based tests over the storage stack's core invariants.

use blobseer::{BlobSeer, BlobSeerConfig, Version};
use bsfs::{Bsfs, BsfsConfig};
use hdfs_sim::{Hdfs, HdfsConfig};
use proptest::prelude::*;

/// A reference model of a sparse, growing byte array.
fn apply_to_model(model: &mut Vec<u8>, offset: usize, data: &[u8]) {
    if offset + data.len() > model.len() {
        model.resize(offset + data.len(), 0);
    }
    model[offset..offset + data.len()].copy_from_slice(data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary sequences of writes and appends against one blob read back
    /// exactly like a plain in-memory byte array, at every intermediate
    /// version.
    #[test]
    fn blobseer_matches_reference_model(
        page_size in 16u64..200,
        ops in prop::collection::vec(
            (0usize..2_000, prop::collection::vec(any::<u8>(), 1..400), any::<bool>()),
            1..12,
        ),
    ) {
        let sys = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(page_size));
        let client = sys.client();
        let blob = client.create(None).unwrap();
        let mut model: Vec<u8> = Vec::new();
        let mut snapshots: Vec<(Version, Vec<u8>)> = Vec::new();

        for (offset, data, is_append) in &ops {
            let version = if *is_append {
                let v = client.append(blob, data).unwrap();
                let at = model.len();
                apply_to_model(&mut model, at, data);
                v
            } else {
                let v = client.write(blob, *offset as u64, data).unwrap();
                apply_to_model(&mut model, *offset, data);
                v
            };
            snapshots.push((version, model.clone()));
        }

        // The latest version matches the final model.
        let size = client.size(blob).unwrap();
        prop_assert_eq!(size, model.len() as u64);
        if size > 0 {
            prop_assert_eq!(client.read_latest(blob, 0, size).unwrap().to_vec(), model.clone());
        }
        // Every intermediate version still reads as it did when published.
        for (version, expected) in &snapshots {
            let got = client.read(blob, *version, 0, expected.len() as u64).unwrap();
            prop_assert_eq!(got.to_vec(), expected.clone());
        }
    }

    /// Whatever is written through BSFS is read back identically, for any
    /// block size and record segmentation, with the cache on or off.
    #[test]
    fn bsfs_write_read_roundtrip(
        block_size in 32u64..300,
        cache in any::<bool>(),
        payload in prop::collection::vec(any::<u8>(), 1..5_000),
        chunking in 1usize..600,
    ) {
        let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(block_size));
        let fs = Bsfs::new(storage, BsfsConfig::default().with_block_size(block_size).with_cache(cache));
        let mut writer = fs.create("/prop/file").unwrap();
        for chunk in payload.chunks(chunking) {
            writer.write(chunk).unwrap();
        }
        writer.close().unwrap();
        prop_assert_eq!(fs.len("/prop/file").unwrap(), payload.len() as u64);
        prop_assert_eq!(fs.read_file("/prop/file").unwrap().to_vec(), payload);
    }

    /// The HDFS baseline honours the same roundtrip property for closed files.
    #[test]
    fn hdfs_write_read_roundtrip(
        chunk_size in 32u64..300,
        payload in prop::collection::vec(any::<u8>(), 1..5_000),
        chunking in 1usize..600,
    ) {
        let fs = Hdfs::new(HdfsConfig { chunk_size, datanodes: 4, replication: 2, seed: 5 });
        let mut writer = fs.create("/prop/file").unwrap();
        for chunk in payload.chunks(chunking) {
            writer.write(chunk).unwrap();
        }
        writer.close().unwrap();
        prop_assert_eq!(fs.len("/prop/file").unwrap(), payload.len() as u64);
        prop_assert_eq!(fs.read_file("/prop/file").unwrap().to_vec(), payload);
    }

    /// Sub-range reads agree with the full contents on both backends.
    #[test]
    fn subrange_reads_are_consistent(
        payload in prop::collection::vec(any::<u8>(), 100..3_000),
        ranges in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..8),
    ) {
        let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(64));
        let bsfs = Bsfs::new(storage, BsfsConfig::default().with_block_size(64));
        bsfs.write_file("/f", &payload).unwrap();
        let hdfs = Hdfs::new(HdfsConfig { chunk_size: 64, datanodes: 4, replication: 1, seed: 2 });
        hdfs.write_file("/f", &payload).unwrap();

        let mut bsfs_reader = bsfs.open("/f").unwrap();
        let mut hdfs_reader = hdfs.open("/f").unwrap();
        for (a, b) in &ranges {
            let offset = (a * (payload.len() - 1) as f64) as usize;
            let len = 1 + (b * (payload.len() - offset - 1) as f64) as usize;
            let expected = payload[offset..offset + len].to_vec();
            prop_assert_eq!(
                bsfs_reader.read_at(offset as u64, len as u64).unwrap().to_vec(),
                expected.clone()
            );
            prop_assert_eq!(
                hdfs_reader.read_at(offset as u64, len as u64).unwrap().to_vec(),
                expected
            );
        }
    }
}
