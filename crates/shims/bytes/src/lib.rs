//! Offline shim for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The container registry is unreachable from the build environment, so the
//! workspace vendors a minimal, API-compatible subset of `bytes` good enough
//! for this codebase: an immutable, cheaply cloneable byte buffer with
//! zero-copy `clone` and `slice`. Anything the real crate offers beyond what
//! the workspace uses (e.g. `BytesMut`, `Buf`/`BufMut`) is intentionally
//! absent.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes backed by a shared
/// allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static slice. The shim copies the data once;
    /// the real crate borrows it, but the observable behaviour is identical.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let arc: Arc<[u8]> = Arc::from(data);
        let end = arc.len();
        Bytes {
            data: arc,
            start: 0,
            end,
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a zero-copy sub-slice of this view.
    ///
    /// # Panics
    /// Panics if the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "range start must not be greater than end");
        assert!(end <= len, "range end out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let arc: Arc<[u8]> = Arc::from(v);
        let end = arc.len();
        Bytes {
            data: arc,
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_view() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(1..).as_ref(), &[3, 4]);
    }

    #[test]
    fn equality_against_slices_and_vecs() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b, *b"abc");
        assert_eq!(b.to_vec(), b"abc".to_vec());
        assert!(b.slice(0..0).is_empty());
    }
}
