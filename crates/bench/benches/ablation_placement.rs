//! Criterion bench for A1: the provider-manager placement strategies under
//! the concurrent-write pattern (flow-level simulation at a reduced scale so
//! each iteration stays fast).

use blobseer::PlacementStrategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::simscale::{sim_write_with_strategy, SimScaleConfig};

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("A1_placement_strategies");
    group.sample_size(10);
    for (label, strategy) in [
        ("load-balanced", PlacementStrategy::LoadBalanced),
        ("random", PlacementStrategy::Random),
        ("local-first", PlacementStrategy::LocalFirst),
    ] {
        group.bench_with_input(BenchmarkId::new(label, 32), &strategy, |b, strategy| {
            b.iter(|| {
                let config = SimScaleConfig {
                    clients: 32,
                    ..SimScaleConfig::small(32)
                };
                sim_write_with_strategy(*strategy, &config).aggregate_throughput()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
