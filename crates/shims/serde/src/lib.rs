//! Offline shim for the [`serde`](https://docs.rs/serde) crate.
//!
//! The real serde models serialization through a `Serializer` visitor; since
//! the only consumer in this workspace is `serde_json::to_string`, the shim
//! collapses the whole stack into one trait that writes JSON directly into a
//! `String`. `Deserialize` is a marker trait — nothing in the workspace
//! deserializes — kept so `#[derive(Deserialize)]` and trait bounds compile.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Serialize `self` as JSON into `out`.
///
/// The derive macro (re-exported above) implements this for structs and
/// enums using serde's standard JSON mapping: named structs as objects,
/// newtypes transparently, tuple structs as arrays, enums externally tagged.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait backing `#[derive(Deserialize)]`. No deserializer exists in
/// the shim; the derive emits an empty impl.
pub trait Deserialize {}

/// Append `s` to `out` as a JSON string literal with escaping.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_display {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        })*
    };
}

impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // serde_json maps non-finite floats to null.
                    out.push_str("null");
                }
            }
        })*
    };
}

impl_serialize_float!(f32, f64);

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(&self.to_string(), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

fn write_json_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

/// JSON object keys must be strings; a non-string key (e.g. a newtype over an
/// integer) is serialized and then quoted if needed, matching serde_json's
/// behaviour for integer keys.
fn write_json_key<K: Serialize>(key: &K, out: &mut String) {
    let mut raw = String::new();
    key.serialize_json(&mut raw);
    if raw.starts_with('"') {
        out.push_str(&raw);
    } else {
        write_json_string(&raw, out);
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_key(k, out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_key(k, out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        })*
    };
}

impl_serialize_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));
