//! Multi-tenant scheduling integration tests: concurrent jobs submitted
//! through [`JobTracker::submit`] share one cluster (and one `DistFs`)
//! under FIFO, fair-share, and capacity schedulers, and every job's output
//! stays byte-identical to the sequential in-memory oracle. Also the
//! regression tests for the concurrency bugs the tentpole flushed out:
//! two jobs racing for one output directory, and scratch-path collisions
//! between concurrent jobs on a shared filesystem.

use blobseer::{BlobSeer, BlobSeerConfig};
use bsfs::{Bsfs, BsfsConfig};
use mapreduce::fs::{BsfsFs, DistFs};
use mapreduce::jobtracker::JobTracker;
use mapreduce::{
    CapacityScheduler, FairScheduler, Job, LatePolicy, MrError, SlotCaps, TenantQuota,
};
use simcluster::ClusterTopology;
use std::sync::Arc;
use std::time::Duration;
use workloads::{distributed_grep_job, word_count_job, word_count_job_combining};

fn cluster(nodes: u32) -> (ClusterTopology, Arc<dyn DistFs>) {
    let topo = ClusterTopology::flat(nodes);
    let node_ids: Vec<_> = topo.all_nodes().collect();
    let storage = BlobSeer::with_topology(
        BlobSeerConfig::for_tests()
            .with_providers(node_ids.len())
            .with_page_size(512),
        &topo,
        &node_ids,
    );
    let fs = BsfsFs::new(Bsfs::new(
        storage,
        BsfsConfig::for_tests().with_block_size(512),
    ));
    (topo, Arc::new(fs))
}

fn input_text() -> String {
    let mut text = String::new();
    for i in 0..60 {
        text.push_str(&format!("alpha bravo{} charlie delta{}\n", i % 5, i % 3));
    }
    text
}

fn tenant_job(tenant: &str, shape: usize, out: &str) -> Job {
    let input = vec!["/in/data.txt".to_string()];
    let mut job = match shape {
        0 => word_count_job(input, out, 2, 256),
        1 => word_count_job_combining(input, out, 3, 256),
        _ => distributed_grep_job(input, out, "alpha", 256),
    };
    job.config.tenant = tenant.to_string();
    job
}

/// Assert `result`'s part files are byte-identical to the in-memory oracle
/// run into `oracle_out`.
fn assert_matches_oracle(
    jt: &JobTracker,
    fs: &dyn DistFs,
    result: &mapreduce::JobResult,
    job_out: &str,
    oracle_job: &Job,
    oracle_out: &str,
) {
    let oracle = jt.run_inmem(fs, oracle_job).unwrap();
    assert_eq!(result.output_files.len(), oracle.output_files.len());
    for (d, o) in result.output_files.iter().zip(&oracle.output_files) {
        assert_eq!(d.strip_prefix(job_out), o.strip_prefix(oracle_out));
        assert_eq!(
            fs.read_file(d).unwrap(),
            fs.read_file(o).unwrap(),
            "{d} diverges from the oracle"
        );
    }
    assert_eq!(result.output_records, oracle.output_records);
    // The output dir holds exactly the part files: no foreign job's spills,
    // no leftover scoped scratch.
    let mut listed = fs.list(job_out).unwrap();
    listed.sort();
    assert_eq!(listed, result.output_files);
}

#[test]
fn two_jobs_racing_for_one_output_dir_get_exactly_one_winner() {
    // Regression: before output preparation was serialized, two concurrent
    // jobs with identical configs could both pass the exists() check, share
    // `/out` (and, worse, its scratch paths), and interleave spills. Now the
    // exists-then-mkdirs window is atomic: one job wins, the other gets
    // `OutputExists`, and the winner's bytes are exactly the oracle's.
    let (topo, fs) = cluster(4);
    fs.write_file("/in/data.txt", input_text().as_bytes())
        .unwrap();
    let jt = JobTracker::new(&topo);
    let h1 = jt
        .submit(fs.clone(), tenant_job("acme", 0, "/out"))
        .unwrap();
    let h2 = jt
        .submit(fs.clone(), tenant_job("acme", 0, "/out"))
        .unwrap();
    let results = [h1.wait(), h2.wait()];
    let winners: Vec<_> = results.iter().filter(|r| r.is_ok()).collect();
    let losers: Vec<_> = results.iter().filter(|r| r.is_err()).collect();
    assert_eq!(
        winners.len(),
        1,
        "exactly one job may own /out: {results:?}"
    );
    assert!(
        matches!(losers[0], Err(MrError::OutputExists(_))),
        "the loser must see OutputExists, got {:?}",
        losers[0]
    );
    let winner = winners[0].as_ref().unwrap();
    assert_matches_oracle(
        &jt,
        &*fs,
        winner,
        "/out",
        &tenant_job("acme", 0, "/out-oracle"),
        "/out-oracle",
    );
}

#[test]
fn concurrent_jobs_on_one_fs_never_cross_contaminate() {
    // Regression for the scratch-path collision: several jobs run at once
    // over the same DistFs, with identical shapes (same map ids, same
    // attempt names). Scoped `_shuffle-<seq>`/`_temporary-<seq>` namespaces
    // keep their spills apart, so every output matches its own oracle.
    for scheduler in 0..3 {
        let (topo, fs) = cluster(4);
        fs.write_file("/in/data.txt", input_text().as_bytes())
            .unwrap();
        let jt = match scheduler {
            0 => JobTracker::new(&topo),
            1 => JobTracker::new(&topo)
                .with_scheduler(Arc::new(FairScheduler::new().with_weight("acme", 2.0))),
            _ => JobTracker::new(&topo).with_scheduler(Arc::new(
                CapacityScheduler::new().with_default_cap(SlotCaps { map: 3, reduce: 3 }),
            )),
        }
        .with_max_concurrent_jobs(6);
        let specs = [
            ("acme", 0usize),
            ("acme", 1),
            ("blue", 0),
            ("blue", 2),
            ("carbon", 1),
            ("carbon", 2),
        ];
        let handles: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, (tenant, shape))| {
                let out = format!("/out-{i}");
                jt.submit(fs.clone(), tenant_job(tenant, *shape, &out))
                    .unwrap()
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
        for (i, (tenant, shape)) in specs.iter().enumerate() {
            let out = format!("/out-{i}");
            let oracle_out = format!("/oracle-{i}");
            assert_matches_oracle(
                &jt,
                &*fs,
                &results[i],
                &out,
                &tenant_job(tenant, *shape, &oracle_out),
                &oracle_out,
            );
        }
        // The ledger saw every job.
        let completed: u64 = ["acme", "blue", "carbon"]
            .iter()
            .map(|t| jt.tenant_usage(t).jobs_completed)
            .sum();
        assert_eq!(completed, specs.len() as u64);
    }
}

#[test]
fn speculating_jobs_stay_correct_while_sharing_the_cluster() {
    // Two concurrent jobs with aggressive LATE speculation: clones may
    // launch (on idle leases only) and may be preempted; output must still
    // be byte-identical to the oracle and no task may be lost.
    let (topo, fs) = cluster(4);
    fs.write_file("/in/data.txt", input_text().as_bytes())
        .unwrap();
    let jt = JobTracker::new(&topo)
        .with_scheduler(Arc::new(FairScheduler::new()))
        .with_max_concurrent_jobs(4);
    let policy = Arc::new(LatePolicy {
        late_factor: 0.0,
        min_runtime: Duration::ZERO,
        min_completed: 1,
    });
    let mut job_a = tenant_job("acme", 0, "/out-a");
    job_a.config.speculation = Some(policy.clone());
    let mut job_b = tenant_job("blue", 1, "/out-b");
    job_b.config.speculation = Some(policy);
    let ha = jt.submit(fs.clone(), job_a).unwrap();
    let hb = jt.submit(fs.clone(), job_b).unwrap();
    let ra = ha.wait().unwrap();
    let rb = hb.wait().unwrap();
    assert_matches_oracle(
        &jt,
        &*fs,
        &ra,
        "/out-a",
        &tenant_job("acme", 0, "/oracle-a"),
        "/oracle-a",
    );
    assert_matches_oracle(
        &jt,
        &*fs,
        &rb,
        "/out-b",
        &tenant_job("blue", 1, "/oracle-b"),
        "/oracle-b",
    );
    // Winning-attempt counters never include clones' reads.
    assert_eq!(ra.locality.total(), ra.map_tasks);
    assert_eq!(rb.locality.total(), rb.map_tasks);
}

#[test]
fn admission_quotas_refuse_over_budget_tenants() {
    let (topo, fs) = cluster(2);
    fs.write_file("/in/data.txt", input_text().as_bytes())
        .unwrap();
    // Queue-depth quota of zero: the tenant cannot submit at all.
    let jt = JobTracker::new(&topo)
        .with_tenant_quota("capped", TenantQuota::unlimited().with_max_queued(0));
    match jt.submit(fs.clone(), tenant_job("capped", 0, "/out-q")) {
        Err(MrError::QuotaExceeded { tenant, .. }) => assert_eq!(tenant, "capped"),
        Err(other) => panic!("expected QuotaExceeded, got {other:?}"),
        Ok(_) => panic!("expected QuotaExceeded, got an admitted job"),
    }
    // Other tenants are unaffected.
    let r = jt
        .submit(fs.clone(), tenant_job("free", 0, "/out-f"))
        .unwrap()
        .wait()
        .unwrap();
    assert!(!r.output_files.is_empty());

    // Namespace budget: the first job's part files exhaust it, the next
    // submit bounces. (Budgets are checked at admission against completed
    // usage, like HDFS namespace quotas.)
    let jt2 = JobTracker::new(&topo)
        .with_tenant_quota("ns", TenantQuota::unlimited().with_max_namespace_entries(2));
    let r = jt2.run(&*fs, &tenant_job("ns", 0, "/out-ns-1")).unwrap();
    assert_eq!(r.output_files.len(), 2);
    assert_eq!(jt2.tenant_usage("ns").namespace_entries, 2);
    assert!(matches!(
        jt2.submit(fs.clone(), tenant_job("ns", 0, "/out-ns-2")),
        Err(MrError::QuotaExceeded { .. })
    ));

    // Storage-bytes budget behaves the same way.
    let jt3 = JobTracker::new(&topo)
        .with_tenant_quota("bytes", TenantQuota::unlimited().with_max_storage_bytes(1));
    jt3.run(&*fs, &tenant_job("bytes", 0, "/out-b-1")).unwrap();
    assert!(jt3.tenant_usage("bytes").storage_bytes >= 1);
    assert!(matches!(
        jt3.submit(fs.clone(), tenant_job("bytes", 0, "/out-b-2")),
        Err(MrError::QuotaExceeded { .. })
    ));
}

#[test]
fn running_jobs_quota_serializes_a_tenant_without_deadlock() {
    let (topo, fs) = cluster(3);
    fs.write_file("/in/data.txt", input_text().as_bytes())
        .unwrap();
    let jt = JobTracker::new(&topo)
        .with_tenant_quota("serial", TenantQuota::unlimited().with_max_running(1))
        .with_max_concurrent_jobs(3);
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let out = format!("/out-{i}");
            jt.submit(fs.clone(), tenant_job("serial", i % 3, &out))
                .unwrap()
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.wait().unwrap();
        assert!(
            !r.output_files.is_empty(),
            "job {i} must complete under the running-jobs quota"
        );
    }
    assert_eq!(jt.tenant_usage("serial").jobs_completed, 3);
}

#[test]
fn submit_and_run_agree_on_results() {
    // `run` is a submit-and-wait shim: same admission, same engine, same
    // bytes as a submitted job of the same shape.
    let (topo, fs) = cluster(4);
    fs.write_file("/in/data.txt", input_text().as_bytes())
        .unwrap();
    let jt = JobTracker::new(&topo);
    let via_run = jt.run(&*fs, &tenant_job("acme", 0, "/out-run")).unwrap();
    let via_submit = jt
        .submit(fs.clone(), tenant_job("acme", 0, "/out-sub"))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(via_run.output_records, via_submit.output_records);
    assert_eq!(via_run.output_files.len(), via_submit.output_files.len());
    for (a, b) in via_run.output_files.iter().zip(&via_submit.output_files) {
        assert_eq!(fs.read_file(a).unwrap(), fs.read_file(b).unwrap());
    }
    assert_eq!(jt.tenant_usage("acme").jobs_completed, 2);
}
