//! E3 — microbenchmark: concurrent clients writing to *different files*
//! (the access pattern of a reduce phase writing per-task outputs, §IV-B).

use workloads::microbench::AccessPattern;

fn main() {
    let (bsfs, hdfs, records) = bench::paper_sweep(
        "E3",
        AccessPattern::WriteDistinctFiles,
        bench::PAPER_CLIENT_COUNTS,
    );
    bench::print_sweep(
        "E3",
        "concurrent writes to different files",
        &bsfs,
        &hdfs,
        &records,
    );
}
