//! Append-only, log-structured on-disk store.
//!
//! This is the durable backend a BlobSeer provider uses for its pages, in the
//! role BerkeleyDB plays in the original system. The design follows the
//! classic log-structured hash-table recipe (Bitcask-style), which suits the
//! provider workload perfectly: pages are written once (BlobSeer never
//! overwrites data), read many times, and only removed by garbage collection
//! of obsolete versions.
//!
//! * Every `put` appends one framed record to the *active segment* file and
//!   updates an in-memory index mapping the key to `(segment, offset, len)`.
//! * Every record carries a CRC-32 over its header and payload, so torn or
//!   corrupted tails are detected and discarded at recovery time.
//! * `delete` appends a tombstone record.
//! * When the active segment outgrows `segment_max_bytes` it is sealed and a
//!   new one is started.
//! * `compact` rewrites the live records into fresh segments and removes the
//!   old files, reclaiming space held by superseded records and tombstones.
//! * `open` rebuilds the index by scanning all segments in order, giving
//!   crash recovery for free.

use crate::crc32::crc32;
use crate::error::{KvError, KvResult};
use crate::PageStore;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Record header layout (little-endian):
/// `crc32(u32) | flags(u8) | key_len(u32) | val_len(u32)` followed by the key
/// and the value. The CRC covers everything after the CRC field itself.
const HEADER_LEN: usize = 4 + 1 + 4 + 4;

/// Flag value for a normal put record.
const FLAG_PUT: u8 = 0;
/// Flag value for a tombstone (deletion) record.
const FLAG_TOMBSTONE: u8 = 1;

/// Tuning knobs for [`LogStore`].
#[derive(Debug, Clone)]
pub struct LogStoreConfig {
    /// Maximum size of a segment file before rotation.
    pub segment_max_bytes: u64,
    /// Maximum key length accepted.
    pub max_key_len: usize,
    /// Maximum value length accepted.
    pub max_value_len: usize,
    /// When true, every put is fsync'd; when false, data is flushed to the OS
    /// but fsync happens only on [`PageStore::sync`] and rotation.
    pub sync_on_put: bool,
}

impl Default for LogStoreConfig {
    fn default() -> Self {
        LogStoreConfig {
            segment_max_bytes: 256 * 1024 * 1024,
            max_key_len: 4096,
            max_value_len: 256 * 1024 * 1024,
            sync_on_put: false,
        }
    }
}

/// Counters describing the state of a [`LogStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogStoreStats {
    /// Number of segment files currently on disk.
    pub segments: usize,
    /// Number of live (visible) keys.
    pub live_keys: usize,
    /// Bytes of live values.
    pub live_value_bytes: u64,
    /// Bytes occupied on disk by all segments (live + garbage).
    pub disk_bytes: u64,
}

#[derive(Debug, Clone, Copy)]
struct RecordLocation {
    segment: u64,
    /// Offset of the value within the segment file.
    value_offset: u64,
    value_len: u32,
}

struct Segment {
    #[allow(dead_code)] // kept for diagnostics / future segment-level GC policies
    id: u64,
    path: PathBuf,
    /// Read handle (positioned reads, no seeking needed).
    reader: File,
    size: u64,
}

struct Inner {
    dir: PathBuf,
    config: LogStoreConfig,
    index: HashMap<Vec<u8>, RecordLocation>,
    segments: HashMap<u64, Segment>,
    active_id: u64,
    active_writer: File,
    live_value_bytes: u64,
    closed: bool,
}

/// Durable log-structured key-value store. Cloneable handles are not provided;
/// wrap in `Arc` to share between threads.
pub struct LogStore {
    inner: RwLock<Inner>,
}

impl LogStore {
    /// Open (or create) a store rooted at `dir`, scanning existing segments to
    /// rebuild the index.
    pub fn open(dir: impl AsRef<Path>, config: LogStoreConfig) -> KvResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        // Discover existing segments, ordered by id.
        let mut ids: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix("seg-") {
                if let Some(num) = rest.strip_suffix(".log") {
                    if let Ok(id) = num.parse::<u64>() {
                        ids.push(id);
                    }
                }
            }
        }
        ids.sort_unstable();

        let mut index = HashMap::new();
        let mut segments = HashMap::new();
        let mut live_value_bytes: u64 = 0;

        for id in &ids {
            let path = segment_path(&dir, *id);
            let size = Self::scan_segment(&path, *id, &mut index, &mut live_value_bytes)?;
            let reader = File::open(&path)?;
            segments.insert(
                *id,
                Segment {
                    id: *id,
                    path,
                    reader,
                    size,
                },
            );
        }

        let active_id = ids.last().copied().unwrap_or(0);
        let active_path = segment_path(&dir, active_id);
        let active_writer = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&active_path)?;
        if let std::collections::hash_map::Entry::Vacant(e) = segments.entry(active_id) {
            let reader = File::open(&active_path)?;
            e.insert(Segment {
                id: active_id,
                path: active_path,
                reader,
                size: 0,
            });
        }

        Ok(LogStore {
            inner: RwLock::new(Inner {
                dir,
                config,
                index,
                segments,
                active_id,
                active_writer,
                live_value_bytes,
                closed: false,
            }),
        })
    }

    /// Scan one segment, updating the index with every valid record found.
    /// Returns the number of valid bytes in the segment (a corrupted tail is
    /// ignored, implementing torn-write recovery).
    fn scan_segment(
        path: &Path,
        segment_id: u64,
        index: &mut HashMap<Vec<u8>, RecordLocation>,
        live_value_bytes: &mut u64,
    ) -> KvResult<u64> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut offset: u64 = 0;
        let mut header = [0u8; HEADER_LEN];

        while offset + HEADER_LEN as u64 <= file_len {
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut header)?;
            let stored_crc = u32::from_le_bytes(header[0..4].try_into().unwrap());
            let flags = header[4];
            let key_len = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
            let val_len = u32::from_le_bytes(header[9..13].try_into().unwrap()) as usize;

            let record_end = offset + HEADER_LEN as u64 + key_len as u64 + val_len as u64;
            if record_end > file_len {
                // Torn tail: the crash happened mid-record. Everything before
                // this point is valid; stop here.
                break;
            }

            let mut payload = vec![0u8; key_len + val_len];
            file.read_exact(&mut payload)?;

            let mut crc_input = Vec::with_capacity(1 + 8 + payload.len());
            crc_input.push(flags);
            crc_input.extend_from_slice(&header[5..13]);
            crc_input.extend_from_slice(&payload);
            if crc32(&crc_input) != stored_crc {
                // Corrupted record: treat it and everything after as garbage.
                break;
            }

            let key = payload[..key_len].to_vec();
            match flags {
                FLAG_PUT => {
                    if let Some(old) = index.insert(
                        key,
                        RecordLocation {
                            segment: segment_id,
                            value_offset: offset + HEADER_LEN as u64 + key_len as u64,
                            value_len: val_len as u32,
                        },
                    ) {
                        *live_value_bytes -= old.value_len as u64;
                    }
                    *live_value_bytes += val_len as u64;
                }
                FLAG_TOMBSTONE => {
                    if let Some(old) = index.remove(&key) {
                        *live_value_bytes -= old.value_len as u64;
                    }
                }
                other => {
                    return Err(KvError::Corrupt {
                        segment: path.display().to_string(),
                        detail: format!("unknown record flag {other}"),
                    });
                }
            }
            offset = record_end;
        }
        Ok(offset)
    }

    /// Append a framed record to the active segment. Returns the offset at
    /// which the *value* starts.
    fn append_record(inner: &mut Inner, flags: u8, key: &[u8], value: &[u8]) -> KvResult<u64> {
        // Rotate if the active segment is full.
        let active = inner
            .segments
            .get(&inner.active_id)
            .expect("active segment exists");
        if active.size >= inner.config.segment_max_bytes {
            Self::rotate(inner)?;
        }

        let key_len = key.len() as u32;
        let val_len = value.len() as u32;
        let mut crc_input = Vec::with_capacity(1 + 8 + key.len() + value.len());
        crc_input.push(flags);
        crc_input.extend_from_slice(&key_len.to_le_bytes());
        crc_input.extend_from_slice(&val_len.to_le_bytes());
        crc_input.extend_from_slice(key);
        crc_input.extend_from_slice(value);
        let crc = crc32(&crc_input);

        let mut frame = Vec::with_capacity(HEADER_LEN + key.len() + value.len());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.push(flags);
        frame.extend_from_slice(&key_len.to_le_bytes());
        frame.extend_from_slice(&val_len.to_le_bytes());
        frame.extend_from_slice(key);
        frame.extend_from_slice(value);

        let segment = inner
            .segments
            .get_mut(&inner.active_id)
            .expect("active segment exists");
        let record_offset = segment.size;
        inner.active_writer.write_all(&frame)?;
        if inner.config.sync_on_put {
            inner.active_writer.sync_data()?;
        }
        segment.size += frame.len() as u64;
        Ok(record_offset + HEADER_LEN as u64 + key.len() as u64)
    }

    /// Seal the active segment and start a new one.
    fn rotate(inner: &mut Inner) -> KvResult<()> {
        inner.active_writer.sync_data()?;
        let new_id = inner.active_id + 1;
        let path = segment_path(&inner.dir, new_id);
        let writer = OpenOptions::new().create(true).append(true).open(&path)?;
        let reader = File::open(&path)?;
        inner.segments.insert(
            new_id,
            Segment {
                id: new_id,
                path,
                reader,
                size: 0,
            },
        );
        inner.active_id = new_id;
        inner.active_writer = writer;
        Ok(())
    }

    /// Rewrite all live records into fresh segments and delete the old files.
    /// Returns the number of bytes reclaimed on disk.
    pub fn compact(&self) -> KvResult<u64> {
        let mut inner = self.inner.write();
        if inner.closed {
            return Err(KvError::Closed);
        }
        let before: u64 = inner.segments.values().map(|s| s.size).sum();

        // Snapshot the live records (key -> value bytes).
        let mut live: Vec<(Vec<u8>, Bytes)> = Vec::with_capacity(inner.index.len());
        let keys: Vec<Vec<u8>> = inner.index.keys().cloned().collect();
        for key in keys {
            let loc = inner.index[&key];
            let value = Self::read_value(&inner, loc)?;
            live.push((key, value));
        }

        // Start a brand-new generation of segments beyond all current ids.
        let new_base = inner.active_id + 1;
        let old_ids: Vec<u64> = inner.segments.keys().copied().collect();

        let path = segment_path(&inner.dir, new_base);
        let writer = OpenOptions::new().create(true).append(true).open(&path)?;
        let reader = File::open(&path)?;
        inner.segments.insert(
            new_base,
            Segment {
                id: new_base,
                path,
                reader,
                size: 0,
            },
        );
        inner.active_id = new_base;
        inner.active_writer = writer;

        inner.index.clear();
        inner.live_value_bytes = 0;
        for (key, value) in live {
            let value_offset = Self::append_record(&mut inner, FLAG_PUT, &key, &value)?;
            inner.live_value_bytes += value.len() as u64;
            let segment = inner.active_id;
            inner.index.insert(
                key,
                RecordLocation {
                    segment,
                    value_offset,
                    value_len: value.len() as u32,
                },
            );
        }
        inner.active_writer.sync_data()?;

        // Remove the old segments.
        for id in old_ids {
            if id == inner.active_id {
                continue;
            }
            if let Some(seg) = inner.segments.remove(&id) {
                let _ = fs::remove_file(&seg.path);
            }
        }

        let after: u64 = inner.segments.values().map(|s| s.size).sum();
        Ok(before.saturating_sub(after))
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> LogStoreStats {
        let inner = self.inner.read();
        LogStoreStats {
            segments: inner.segments.len(),
            live_keys: inner.index.len(),
            live_value_bytes: inner.live_value_bytes,
            disk_bytes: inner.segments.values().map(|s| s.size).sum(),
        }
    }

    /// Mark the store closed; further operations fail with [`KvError::Closed`].
    pub fn close(&self) -> KvResult<()> {
        let mut inner = self.inner.write();
        inner.active_writer.sync_data()?;
        inner.closed = true;
        Ok(())
    }

    fn read_value(inner: &Inner, loc: RecordLocation) -> KvResult<Bytes> {
        let segment = inner
            .segments
            .get(&loc.segment)
            .ok_or_else(|| KvError::Corrupt {
                segment: format!("seg-{:08}.log", loc.segment),
                detail: "index references a missing segment".into(),
            })?;
        let mut buf = vec![0u8; loc.value_len as usize];
        // The active segment's reader may lag behind buffered writes; flush
        // is performed by append (write_all goes straight to the fd), so
        // positioned reads see the data.
        segment.reader.read_exact_at(&mut buf, loc.value_offset)?;
        Ok(Bytes::from(buf))
    }
}

impl PageStore for LogStore {
    fn put(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        let mut inner = self.inner.write();
        if inner.closed {
            return Err(KvError::Closed);
        }
        if key.len() > inner.config.max_key_len {
            return Err(KvError::TooLarge {
                what: "key",
                len: key.len(),
                max: inner.config.max_key_len,
            });
        }
        if value.len() > inner.config.max_value_len {
            return Err(KvError::TooLarge {
                what: "value",
                len: value.len(),
                max: inner.config.max_value_len,
            });
        }
        let value_offset = Self::append_record(&mut inner, FLAG_PUT, key, &value)?;
        let segment = inner.active_id;
        if let Some(old) = inner.index.insert(
            key.to_vec(),
            RecordLocation {
                segment,
                value_offset,
                value_len: value.len() as u32,
            },
        ) {
            inner.live_value_bytes -= old.value_len as u64;
        }
        inner.live_value_bytes += value.len() as u64;
        Ok(())
    }

    fn get(&self, key: &[u8]) -> KvResult<Option<Bytes>> {
        let inner = self.inner.read();
        if inner.closed {
            return Err(KvError::Closed);
        }
        match inner.index.get(key) {
            Some(loc) => Ok(Some(Self::read_value(&inner, *loc)?)),
            None => Ok(None),
        }
    }

    fn delete(&self, key: &[u8]) -> KvResult<bool> {
        let mut inner = self.inner.write();
        if inner.closed {
            return Err(KvError::Closed);
        }
        if inner.index.contains_key(key) {
            Self::append_record(&mut inner, FLAG_TOMBSTONE, key, &[])?;
            if let Some(old) = inner.index.remove(key) {
                inner.live_value_bytes -= old.value_len as u64;
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn len(&self) -> usize {
        self.inner.read().index.len()
    }

    fn data_bytes(&self) -> u64 {
        self.inner.read().live_value_bytes
    }

    fn sync(&self) -> KvResult<()> {
        let inner = self.inner.write();
        if inner.closed {
            return Err(KvError::Closed);
        }
        inner.active_writer.sync_data()?;
        Ok(())
    }
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.log"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Fresh temp dir per test.
    fn tmpdir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "logstore-test-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn basic_roundtrip_and_overwrite() {
        let dir = tmpdir("roundtrip");
        let s = LogStore::open(&dir, LogStoreConfig::default()).unwrap();
        s.put(b"page-0", Bytes::from_static(b"hello")).unwrap();
        s.put(b"page-1", Bytes::from_static(b"world")).unwrap();
        assert_eq!(
            s.get(b"page-0").unwrap().unwrap(),
            Bytes::from_static(b"hello")
        );
        s.put(b"page-0", Bytes::from_static(b"HELLO AGAIN"))
            .unwrap();
        assert_eq!(
            s.get(b"page-0").unwrap().unwrap(),
            Bytes::from_static(b"HELLO AGAIN")
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.data_bytes(), 11 + 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_appends_tombstone() {
        let dir = tmpdir("delete");
        let s = LogStore::open(&dir, LogStoreConfig::default()).unwrap();
        s.put(b"k", Bytes::from_static(b"v")).unwrap();
        assert!(s.delete(b"k").unwrap());
        assert!(!s.delete(b"k").unwrap());
        assert!(s.get(b"k").unwrap().is_none());
        assert_eq!(s.len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_rebuilds_index() {
        let dir = tmpdir("recovery");
        {
            let s = LogStore::open(&dir, LogStoreConfig::default()).unwrap();
            for i in 0..50u32 {
                s.put(
                    format!("key-{i}").as_bytes(),
                    Bytes::from(format!("value-{i}")),
                )
                .unwrap();
            }
            s.put(b"key-7", Bytes::from_static(b"updated")).unwrap();
            s.delete(b"key-9").unwrap();
            s.sync().unwrap();
        }
        // Re-open: the index must reflect the final state.
        let s = LogStore::open(&dir, LogStoreConfig::default()).unwrap();
        assert_eq!(s.len(), 49);
        assert_eq!(
            s.get(b"key-7").unwrap().unwrap(),
            Bytes::from_static(b"updated")
        );
        assert!(s.get(b"key-9").unwrap().is_none());
        assert_eq!(
            s.get(b"key-11").unwrap().unwrap(),
            Bytes::from_static(b"value-11")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_rotation_spreads_data_over_files() {
        let dir = tmpdir("rotation");
        let config = LogStoreConfig {
            segment_max_bytes: 1024,
            ..Default::default()
        };
        let s = LogStore::open(&dir, config).unwrap();
        for i in 0..100u32 {
            s.put(
                format!("key-{i}").as_bytes(),
                Bytes::from(vec![i as u8; 100]),
            )
            .unwrap();
        }
        let stats = s.stats();
        assert!(
            stats.segments > 1,
            "expected multiple segments, got {}",
            stats.segments
        );
        assert_eq!(stats.live_keys, 100);
        // Every key must still be readable across segments.
        for i in 0..100u32 {
            let v = s.get(format!("key-{i}").as_bytes()).unwrap().unwrap();
            assert_eq!(v.len(), 100);
            assert_eq!(v[0], i as u8);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_across_rotated_segments() {
        let dir = tmpdir("multi-seg-recovery");
        let config = LogStoreConfig {
            segment_max_bytes: 512,
            ..Default::default()
        };
        {
            let s = LogStore::open(&dir, config.clone()).unwrap();
            for i in 0..60u32 {
                s.put(format!("k{i}").as_bytes(), Bytes::from(vec![0xAB; 64]))
                    .unwrap();
            }
            s.sync().unwrap();
        }
        let s = LogStore::open(&dir, config).unwrap();
        assert_eq!(s.len(), 60);
        assert_eq!(s.get(b"k59").unwrap().unwrap().len(), 64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_space_and_preserves_data() {
        let dir = tmpdir("compaction");
        let config = LogStoreConfig {
            segment_max_bytes: 2048,
            ..Default::default()
        };
        let s = LogStore::open(&dir, config).unwrap();
        // Write each key several times so most records are garbage.
        for round in 0..5u32 {
            for i in 0..20u32 {
                s.put(
                    format!("k{i}").as_bytes(),
                    Bytes::from(format!("round-{round}-value-{i}")),
                )
                .unwrap();
            }
        }
        for i in 0..5u32 {
            s.delete(format!("k{i}").as_bytes()).unwrap();
        }
        let before = s.stats();
        let reclaimed = s.compact().unwrap();
        let after = s.stats();
        assert!(reclaimed > 0, "compaction should reclaim bytes");
        assert!(after.disk_bytes < before.disk_bytes);
        assert_eq!(after.live_keys, 15);
        for i in 5..20u32 {
            let v = s.get(format!("k{i}").as_bytes()).unwrap().unwrap();
            assert_eq!(v, Bytes::from(format!("round-4-value-{i}")));
        }
        for i in 0..5u32 {
            assert!(s.get(format!("k{i}").as_bytes()).unwrap().is_none());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn data_survives_compaction_then_reopen() {
        let dir = tmpdir("compact-reopen");
        {
            let s = LogStore::open(&dir, LogStoreConfig::default()).unwrap();
            for i in 0..30u32 {
                s.put(format!("k{i}").as_bytes(), Bytes::from(format!("v{i}")))
                    .unwrap();
                s.put(
                    format!("k{i}").as_bytes(),
                    Bytes::from(format!("v{i}-final")),
                )
                .unwrap();
            }
            s.compact().unwrap();
        }
        let s = LogStore::open(&dir, LogStoreConfig::default()).unwrap();
        assert_eq!(s.len(), 30);
        assert_eq!(
            s.get(b"k12").unwrap().unwrap(),
            Bytes::from_static(b"v12-final")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_ignored_on_recovery() {
        let dir = tmpdir("torn");
        {
            let s = LogStore::open(&dir, LogStoreConfig::default()).unwrap();
            s.put(b"good", Bytes::from_static(b"data")).unwrap();
            s.sync().unwrap();
        }
        // Append garbage simulating a torn write.
        let seg = segment_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        drop(f);

        let s = LogStore::open(&dir, LogStoreConfig::default()).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.get(b"good").unwrap().unwrap(),
            Bytes::from_static(b"data")
        );
        // The store keeps working after recovery.
        s.put(b"more", Bytes::from_static(b"stuff")).unwrap();
        assert_eq!(s.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_record_truncates_recovery_at_that_point() {
        let dir = tmpdir("corrupt");
        {
            let s = LogStore::open(&dir, LogStoreConfig::default()).unwrap();
            s.put(b"a", Bytes::from_static(b"111")).unwrap();
            s.put(b"b", Bytes::from_static(b"222")).unwrap();
            s.sync().unwrap();
        }
        // Flip a byte in the middle of the second record's value.
        let seg = segment_path(&dir, 0);
        let data = fs::read(&seg).unwrap();
        let mut corrupted = data.clone();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0xFF;
        fs::write(&seg, corrupted).unwrap();

        let s = LogStore::open(&dir, LogStoreConfig::default()).unwrap();
        // The first record survives; the corrupted one is dropped.
        assert_eq!(s.get(b"a").unwrap().unwrap(), Bytes::from_static(b"111"));
        assert!(s.get(b"b").unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_key_and_value_are_rejected() {
        let dir = tmpdir("limits");
        let config = LogStoreConfig {
            max_key_len: 8,
            max_value_len: 16,
            ..Default::default()
        };
        let s = LogStore::open(&dir, config).unwrap();
        let err = s
            .put(b"a-key-that-is-too-long", Bytes::from_static(b"v"))
            .unwrap_err();
        assert!(matches!(err, KvError::TooLarge { what: "key", .. }));
        let err = s.put(b"k", Bytes::from(vec![0u8; 64])).unwrap_err();
        assert!(matches!(err, KvError::TooLarge { what: "value", .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn closed_store_rejects_operations() {
        let dir = tmpdir("closed");
        let s = LogStore::open(&dir, LogStoreConfig::default()).unwrap();
        s.put(b"k", Bytes::from_static(b"v")).unwrap();
        s.close().unwrap();
        assert!(matches!(
            s.put(b"k2", Bytes::from_static(b"v")),
            Err(KvError::Closed)
        ));
        assert!(matches!(s.get(b"k"), Err(KvError::Closed)));
        assert!(matches!(s.delete(b"k"), Err(KvError::Closed)));
        assert!(matches!(s.sync(), Err(KvError::Closed)));
        assert!(matches!(s.compact(), Err(KvError::Closed)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_puts_and_gets() {
        let dir = tmpdir("concurrent");
        let s = std::sync::Arc::new(LogStore::open(&dir, LogStoreConfig::default()).unwrap());
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        s.put(
                            format!("t{t}-k{i}").as_bytes(),
                            Bytes::from(vec![t as u8; 128]),
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(s.len(), 400);
        for t in 0..4u8 {
            for i in 0..100 {
                let v = s.get(format!("t{t}-k{i}").as_bytes()).unwrap().unwrap();
                assert_eq!(v[0], t);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
