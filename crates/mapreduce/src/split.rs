//! Input splits and record extraction.
//!
//! "The input data is also split into chunks of equal size, that are stored
//! in a distributed file system across the cluster. First, the map tasks are
//! run, each processing a chunk of the input file" (paper §II-A). A split is
//! the unit of map-task work: a contiguous byte range of one input file (or a
//! synthetic split for generator jobs), annotated with the nodes that hold
//! the underlying data so the scheduler can place the task next to it.
//!
//! Record extraction follows Hadoop's text-input convention: records are
//! newline-terminated lines; a split that does not start at offset 0 skips
//! the partial line at its head (it belongs to the previous split), and the
//! line that begins inside a split is processed entirely by that split even
//! if it continues past the split's end.

use crate::error::{MrError, MrResult};
use crate::fs::DistFs;
use crate::job::InputSpec;
use simcluster::NodeId;

/// What a split reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitSource {
    /// A byte range of a file.
    File {
        /// Path of the input file.
        path: String,
        /// First byte of the split.
        offset: u64,
        /// Length of the split in bytes.
        len: u64,
    },
    /// A synthetic split: `records` empty records, keyed 0..records.
    Synthetic {
        /// Index of the split within the job.
        index: usize,
        /// Number of records to generate.
        records: u64,
    },
}

/// One unit of map-task work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSplit {
    /// Dense id of the split within the job.
    pub id: usize,
    /// The data the split covers.
    pub source: SplitSource,
    /// Nodes that hold the split's data (empty for synthetic splits).
    pub preferred_nodes: Vec<NodeId>,
}

impl InputSplit {
    /// Number of input bytes this split covers.
    pub fn byte_len(&self) -> u64 {
        match &self.source {
            SplitSource::File { len, .. } => *len,
            SplitSource::Synthetic { .. } => 0,
        }
    }
}

/// Expand an input specification into splits, querying the file system for
/// sizes and data locations.
pub fn compute_splits(
    fs: &dyn DistFs,
    input: &InputSpec,
    split_size: u64,
) -> MrResult<Vec<InputSplit>> {
    assert!(split_size > 0, "split size must be non-zero");
    match input {
        InputSpec::Synthetic {
            splits,
            records_per_split,
        } => Ok((0..*splits)
            .map(|i| InputSplit {
                id: i,
                source: SplitSource::Synthetic {
                    index: i,
                    records: *records_per_split,
                },
                preferred_nodes: Vec::new(),
            })
            .collect()),
        InputSpec::Files(paths) => {
            let mut files = Vec::new();
            for path in paths {
                expand_path(fs, path, &mut files)?;
            }
            if files.is_empty() {
                return Err(MrError::InvalidJob("input matched no files".into()));
            }
            let mut splits = Vec::new();
            for file in files {
                let size = fs.len(&file)?;
                if size == 0 {
                    continue;
                }
                let mut offset = 0u64;
                while offset < size {
                    let len = split_size.min(size - offset);
                    let preferred_nodes = fs
                        .locate(&file, offset, len)
                        .unwrap_or_default()
                        .into_iter()
                        .flat_map(|hint| hint.nodes)
                        .fold(Vec::new(), |mut acc, n| {
                            if !acc.contains(&n) {
                                acc.push(n);
                            }
                            acc
                        });
                    splits.push(InputSplit {
                        id: splits.len(),
                        source: SplitSource::File {
                            path: file.clone(),
                            offset,
                            len,
                        },
                        preferred_nodes,
                    });
                    offset += len;
                }
            }
            if splits.is_empty() {
                return Err(MrError::InvalidJob("all input files are empty".into()));
            }
            Ok(splits)
        }
    }
}

/// Recursively expand a path into the files below it.
fn expand_path(fs: &dyn DistFs, path: &str, out: &mut Vec<String>) -> MrResult<()> {
    if !fs.exists(path) {
        return Err(MrError::InputNotFound(path.to_string()));
    }
    match fs.list(path) {
        Ok(children) => {
            for child in children {
                expand_path(fs, &child, out)?;
            }
            Ok(())
        }
        Err(_) => {
            // Not a directory: it is a file.
            out.push(path.to_string());
            Ok(())
        }
    }
}

/// Read the text records belonging to a file split, following the Hadoop
/// convention for records that straddle split boundaries. Returns
/// `(byte offset of the line, line without trailing newline)` pairs, plus the
/// number of bytes actually read from storage (for the job counters).
pub fn read_records(
    fs: &dyn DistFs,
    path: &str,
    offset: u64,
    len: u64,
) -> MrResult<(Vec<(u64, String)>, u64)> {
    let mut reader = fs.open(path)?;
    let file_size = reader.len()?;
    let split_end = (offset + len).min(file_size);
    if offset >= file_size {
        return Ok((Vec::new(), 0));
    }

    // Read the split itself.
    let mut data = reader.read_at(offset, split_end - offset)?.to_vec();
    let mut bytes_read = data.len() as u64;

    // If the split does not end exactly at EOF or on a newline, keep reading
    // until the line that started inside the split is complete.
    let mut tail_pos = split_end;
    while tail_pos < file_size && !data.ends_with(b"\n") {
        let chunk_len = 4096.min(file_size - tail_pos);
        let chunk = reader.read_at(tail_pos, chunk_len)?;
        bytes_read += chunk.len() as u64;
        tail_pos += chunk.len() as u64;
        if let Some(nl) = chunk.iter().position(|b| *b == b'\n') {
            data.extend_from_slice(&chunk[..=nl]);
            break;
        }
        data.extend_from_slice(&chunk);
    }

    // Skip the partial line at the head of a non-initial split: it belongs to
    // the previous split (a line is owned by the split containing its first
    // byte). The split starts on a fresh line exactly when the byte before it
    // is a newline, which costs one extra one-byte read to find out.
    let mut start_in_data = 0usize;
    if offset > 0 {
        let prev_byte = reader.read_at(offset - 1, 1)?;
        bytes_read += 1;
        if prev_byte.first() != Some(&b'\n') {
            match data.iter().position(|b| *b == b'\n') {
                Some(nl) => start_in_data = nl + 1,
                None => return Ok((Vec::new(), bytes_read)),
            }
        }
    }

    let mut records = Vec::new();
    let mut line_start = start_in_data;
    for (i, b) in data.iter().enumerate().skip(start_in_data) {
        if *b == b'\n' {
            let line_offset = offset + line_start as u64;
            // Only lines that *start* inside the split belong to it.
            if line_offset < split_end {
                let line = String::from_utf8_lossy(&data[line_start..i]).into_owned();
                records.push((line_offset, line));
            }
            line_start = i + 1;
        }
    }
    // A final line without a trailing newline (end of file).
    if line_start < data.len() {
        let line_offset = offset + line_start as u64;
        if line_offset < split_end && tail_pos >= file_size {
            let line = String::from_utf8_lossy(&data[line_start..]).into_owned();
            records.push((line_offset, line));
        }
    }
    Ok((records, bytes_read))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::BsfsFs;
    use blobseer::{BlobSeer, BlobSeerConfig};
    use bsfs::{Bsfs, BsfsConfig};

    fn fs() -> BsfsFs {
        let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(256));
        BsfsFs::new(Bsfs::new(storage, BsfsConfig::for_tests()))
    }

    #[test]
    fn synthetic_splits() {
        let fs = fs();
        let splits = compute_splits(
            &fs,
            &InputSpec::Synthetic {
                splits: 4,
                records_per_split: 100,
            },
            1024,
        )
        .unwrap();
        assert_eq!(splits.len(), 4);
        assert_eq!(splits[2].id, 2);
        assert_eq!(splits[2].byte_len(), 0);
        assert!(matches!(
            splits[3].source,
            SplitSource::Synthetic {
                index: 3,
                records: 100
            }
        ));
    }

    #[test]
    fn file_splits_cover_the_whole_file() {
        let fs = fs();
        let data = vec![b'x'; 1000];
        fs.write_file("/in/big", &data).unwrap();
        let splits = compute_splits(&fs, &InputSpec::Files(vec!["/in/big".into()]), 300).unwrap();
        assert_eq!(splits.len(), 4);
        let total: u64 = splits.iter().map(InputSplit::byte_len).sum();
        assert_eq!(total, 1000);
        assert!(splits.iter().all(|s| !s.preferred_nodes.is_empty()));
        // Last split is the remainder.
        assert_eq!(splits[3].byte_len(), 100);
    }

    #[test]
    fn directory_inputs_are_expanded_recursively() {
        let fs = fs();
        fs.write_file("/in/a.txt", b"aaa\n").unwrap();
        fs.write_file("/in/sub/b.txt", b"bbb\n").unwrap();
        fs.write_file("/in/sub/deeper/c.txt", b"ccc\n").unwrap();
        let splits = compute_splits(&fs, &InputSpec::Files(vec!["/in".into()]), 1024).unwrap();
        assert_eq!(splits.len(), 3);
    }

    #[test]
    fn empty_files_are_skipped_and_all_empty_is_an_error() {
        let fs = fs();
        fs.write_file("/in/empty", b"").unwrap();
        fs.write_file("/in/full", b"data\n").unwrap();
        let splits = compute_splits(&fs, &InputSpec::Files(vec!["/in".into()]), 64).unwrap();
        assert_eq!(splits.len(), 1);

        let fs2 = self::fs();
        fs2.write_file("/only/empty", b"").unwrap();
        assert!(matches!(
            compute_splits(&fs2, &InputSpec::Files(vec!["/only".into()]), 64),
            Err(MrError::InvalidJob(_))
        ));
    }

    #[test]
    fn missing_input_is_reported() {
        let fs = fs();
        assert!(matches!(
            compute_splits(&fs, &InputSpec::Files(vec!["/ghost".into()]), 64),
            Err(MrError::InputNotFound(_))
        ));
    }

    #[test]
    fn records_split_on_line_boundaries() {
        let fs = fs();
        let text = "alpha\nbeta\ngamma\ndelta\nepsilon\n";
        fs.write_file("/lines", text.as_bytes()).unwrap();
        let (records, _) = read_records(&fs, "/lines", 0, text.len() as u64).unwrap();
        let lines: Vec<&str> = records.iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(lines, vec!["alpha", "beta", "gamma", "delta", "epsilon"]);
        // Offsets point at the start of each line.
        assert_eq!(records[0].0, 0);
        assert_eq!(records[1].0, 6);
    }

    #[test]
    fn split_boundaries_never_lose_or_duplicate_records() {
        let fs = fs();
        // Lines of varying lengths, total 1000+ bytes.
        let mut text = String::new();
        for i in 0..100 {
            text.push_str(&format!("record-{i:03}-{}\n", "x".repeat(i % 17)));
        }
        fs.write_file("/boundary", text.as_bytes()).unwrap();
        let size = text.len() as u64;

        // For several split sizes, the union of all splits' records must be
        // exactly the file's lines, in order, with no duplicates.
        for split_size in [64u64, 100, 128, 333, 1000, size] {
            let mut all: Vec<(u64, String)> = Vec::new();
            let mut offset = 0;
            while offset < size {
                let len = split_size.min(size - offset);
                let (mut records, _) = read_records(&fs, "/boundary", offset, len).unwrap();
                all.append(&mut records);
                offset += len;
            }
            let expected: Vec<&str> = text.lines().collect();
            let got: Vec<&str> = all.iter().map(|(_, l)| l.as_str()).collect();
            assert_eq!(got, expected, "split_size={split_size}");
        }
    }

    #[test]
    fn file_without_trailing_newline_keeps_last_record() {
        let fs = fs();
        fs.write_file("/no-newline", b"first\nsecond\nlast-no-nl")
            .unwrap();
        let (records, _) = read_records(&fs, "/no-newline", 0, 23).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].1, "last-no-nl");
    }

    #[test]
    fn read_records_beyond_eof_is_empty() {
        let fs = fs();
        fs.write_file("/short", b"only\n").unwrap();
        let (records, bytes) = read_records(&fs, "/short", 100, 50).unwrap();
        assert!(records.is_empty());
        assert_eq!(bytes, 0);
    }
}
