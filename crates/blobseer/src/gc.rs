//! Snapshot garbage collection: mark-and-sweep reclamation of retired
//! versions.
//!
//! BlobSeer never overwrites data — every write publishes a new snapshot and
//! old snapshots stay readable. Under a workload that rewrites the same
//! blobs in a loop (a MapReduce job chain re-running over the same files)
//! the history grows without bound: metadata tree nodes accumulate in the
//! DHT and superseded page images accumulate on the providers. This module
//! bounds that footprint. A keep-last-K retention policy on the version
//! manager retires old snapshots ([`crate::VersionManager::retire_expired`],
//! pinned snapshots exempt), and the sweep here reclaims everything only the
//! retired snapshots referenced.
//!
//! Correctness leans on two structural facts of the path-copied segment
//! tree:
//!
//! * the nodes *created* by version `d` carry `key.version == d` and form a
//!   connected subtree containing `d`'s root — everything else reachable
//!   from that root is shared with older versions;
//! * a parent's version is never older than its children's, so a descent
//!   can prune below any node older than the oldest retired version:
//!   nothing created by a retired version can appear underneath.
//!
//! The sweep deletes exactly `candidates - live`: nodes created by retired
//! versions, minus those still reachable from a surviving tree (subtree
//! sharing — or a root aliased by an aborted write — keeps them alive).
//! Page images are stored under the version whose write created them, which
//! is exactly the owning leaf's version, so a reclaimed leaf takes its page
//! replicas with it: no surviving tree can resolve that page to the same
//! image except through the (now unreachable) leaf.

use crate::error::BlobResult;
use crate::metadata::store::MetadataStore;
use crate::metadata::{NodeKey, TreeNode};
use crate::provider::page_key;
use crate::provider_manager::ProviderManager;
use crate::types::BlobId;
use crate::version_manager::VersionInfo;
use serde::Serialize;
use std::collections::{BTreeSet, HashMap, HashSet};

/// What one garbage-collection cycle reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct GcReport {
    /// Snapshots retired by the retention policy.
    pub versions_retired: u64,
    /// Segment-tree nodes removed from the metadata DHT.
    pub nodes_removed: u64,
    /// Distinct page images deleted from the providers.
    pub pages_deleted: u64,
    /// Page replicas deleted (>= `pages_deleted` under replication).
    pub page_replicas_deleted: u64,
    /// DHT tombstones dropped after the node removals.
    pub tombstones_compacted: u64,
}

impl GcReport {
    /// Fold another cycle's (or another blob's) counts into this report.
    pub fn absorb(&mut self, other: &GcReport) {
        self.versions_retired += other.versions_retired;
        self.nodes_removed += other.nodes_removed;
        self.pages_deleted += other.pages_deleted;
        self.page_replicas_deleted += other.page_replicas_deleted;
        self.tombstones_compacted += other.tombstones_compacted;
    }
}

/// Reclaim the metadata nodes and page images that only the retired
/// snapshots of `blob` referenced.
///
/// `dead` is what [`crate::VersionManager::retire_expired`] returned;
/// `surviving` is the blob's remaining published history. The caller must
/// pass the *complete* surviving history: any surviving version left out
/// could have nodes it shares with a retired version swept from under it.
pub fn collect_blob_garbage(
    store: &MetadataStore,
    providers: &ProviderManager,
    blob: BlobId,
    dead: &[VersionInfo],
    surviving: &[VersionInfo],
) -> BlobResult<GcReport> {
    let mut report = GcReport {
        versions_retired: dead.len() as u64,
        ..GcReport::default()
    };
    let dead_set: BTreeSet<u64> = dead.iter().map(|v| v.version.0).collect();
    let Some(&min_dead) = dead_set.first() else {
        return Ok(report);
    };

    // Mark phase 1 — candidates: every node created by a retired version,
    // found by descending from the retired roots through retired-version
    // nodes only (an older child is shared, not a candidate). A retired
    // root can itself be an alias of an older version (aborted write); it
    // only seeds the walk when some retired version created it.
    let mut candidates: HashMap<NodeKey, TreeNode> = HashMap::new();
    let mut queued: HashSet<NodeKey> = HashSet::new();
    let mut frontier: Vec<NodeKey> = Vec::new();
    for info in dead {
        if let Some(root) = info.root {
            if dead_set.contains(&root.version.0) && queued.insert(root) {
                frontier.push(root);
            }
        }
    }
    while !frontier.is_empty() {
        let nodes = store.get_nodes(&frontier)?;
        let mut next = Vec::new();
        for (key, node) in frontier.drain(..).zip(nodes) {
            if let TreeNode::Inner { left, right } = &node {
                for child in [left, right].into_iter().flatten() {
                    if dead_set.contains(&child.version.0) && queued.insert(*child) {
                        next.push(*child);
                    }
                }
            }
            candidates.insert(key, node);
        }
        frontier = next;
    }

    // Mark phase 2 — live: candidates still reachable from a surviving
    // tree. The descent prunes below anything older than the oldest retired
    // version; whole trees older than that are skipped outright.
    let mut live: HashSet<NodeKey> = HashSet::new();
    let mut visited: HashSet<NodeKey> = HashSet::new();
    let mut frontier: Vec<NodeKey> = surviving
        .iter()
        .filter_map(|info| info.root)
        .filter(|root| root.version.0 >= min_dead && visited.insert(*root))
        .collect();
    while !frontier.is_empty() {
        let nodes = store.get_nodes(&frontier)?;
        let mut next = Vec::new();
        for (key, node) in frontier.drain(..).zip(nodes) {
            if dead_set.contains(&key.version.0) {
                live.insert(key);
            }
            if let TreeNode::Inner { left, right } = &node {
                for child in [left, right].into_iter().flatten() {
                    if child.version.0 >= min_dead && visited.insert(*child) {
                        next.push(*child);
                    }
                }
            }
        }
        frontier = next;
    }

    // Sweep: delete page replicas of unreachable leaves, then the nodes
    // themselves. A downed provider is skipped — its lingering replica is
    // unreadable anyway and the page image key is never reused (versions are
    // never reissued), so this stays safe without coordination.
    for (key, node) in &candidates {
        if live.contains(key) {
            continue;
        }
        if let TreeNode::Leaf {
            page,
            providers: replicas,
        } = node
        {
            if !replicas.is_empty() {
                let pkey = page_key(blob, key.version, *page);
                // The leaf records where the write put the copies; repair
                // may since have rebuilt replicas elsewhere, so sweep the
                // announced holders too and drop the page from the registry
                // (otherwise repair would resurrect the deleted image).
                let mut targets: Vec<_> = replicas.clone();
                for pid in providers.holders(&pkey) {
                    if !targets.contains(&pid) {
                        targets.push(pid);
                    }
                }
                let mut deleted_any = false;
                for pid in &targets {
                    if let Some(provider) = providers.provider(*pid) {
                        if let Ok(true) = provider.delete_page(&pkey) {
                            report.page_replicas_deleted += 1;
                            deleted_any = true;
                        }
                    }
                }
                providers.withdraw_page(&pkey);
                if deleted_any {
                    report.pages_deleted += 1;
                }
            }
        }
        if store.remove_node(*key)? {
            report.nodes_removed += 1;
        }
    }
    Ok(report)
}
