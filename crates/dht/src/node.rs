//! A single metadata provider node.
//!
//! Each node owns a key-value map plus a liveness flag. The `Dht` front-end
//! decides *which* nodes a key lives on; the node itself only stores and
//! serves.
//!
//! The map lives single-threaded inside a message-loop actor
//! ([`miniexec::actor`]); the `DhtNode` the rest of the system holds is a
//! thin handle that enqueues commands and waits for replies. No shared
//! locks, and mailbox FIFO gives kill-then-put ordering: a `put` enqueued
//! after a `kill` observes the dead state.
//!
//! **Failure model.** A dead node *refuses* data operations — `put`, `get`
//! and `remove` return [`NodeDown`], exactly what a remote peer would
//! observe as a connection error. Callers are expected to discover death
//! this way (or via [`DhtNode::ping`] heartbeats) rather than trust any
//! shared flag. The administrative surface (`len`, `entries`, `data_bytes`)
//! keeps working while dead: it models reading the node's persistent state,
//! which is how a revive restores from "disk" and how tests inspect a
//! crashed node. The only shared state is a read-only mirror of the
//! liveness flag ([`DhtNode::is_alive`]) kept as a cheap *hint* for
//! replica-ordering and stats; correctness never depends on it being fresh.

use bytes::Bytes;
use miniexec::{actor, oneshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of a DHT node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DhtNodeId(pub u64);

/// A data operation reached a node that is not serving (crashed, or its
/// actor is gone). The caller should fail over to another replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDown;

/// Result of a data operation against one node.
pub type NodeResult<T> = Result<T, NodeDown>;

/// Commands understood by the node actor.
enum NodeMsg {
    Put {
        key: Vec<u8>,
        value: Bytes,
        reply: oneshot::Sender<NodeResult<()>>,
    },
    Get {
        key: Vec<u8>,
        reply: oneshot::Sender<NodeResult<Option<Bytes>>>,
    },
    Remove {
        key: Vec<u8>,
        reply: oneshot::Sender<NodeResult<bool>>,
    },
    /// Heartbeat probe: replies `true` iff the node is serving. A crashed
    /// node still answers (the actor thread is the simulation substrate,
    /// not the simulated process) but answers `false`; an actor whose
    /// mailbox is gone never answers — both count as a missed heartbeat.
    Ping(oneshot::Sender<bool>),
    Len(oneshot::Sender<usize>),
    Entries(oneshot::Sender<Vec<(Vec<u8>, Bytes)>>),
    Kill(oneshot::Sender<()>),
    Revive(oneshot::Sender<()>),
}

/// The actor's single-threaded state: plain fields, no locks.
struct NodeState {
    data: HashMap<Vec<u8>, Bytes>,
    alive: bool,
    /// Mirrors shared with the handle so hot-path reads stay lock-free.
    alive_mirror: Arc<AtomicBool>,
    bytes_mirror: Arc<AtomicU64>,
}

impl NodeState {
    fn handle(&mut self, msg: NodeMsg) {
        match msg {
            NodeMsg::Put { key, value, reply } => {
                if !self.alive {
                    let _ = reply.send(Err(NodeDown));
                    return;
                }
                let new_len = value.len() as u64;
                let old_len = self
                    .data
                    .insert(key, value)
                    .map(|old| old.len() as u64)
                    .unwrap_or(0);
                if new_len >= old_len {
                    self.bytes_mirror
                        .fetch_add(new_len - old_len, Ordering::Relaxed);
                } else {
                    self.bytes_mirror
                        .fetch_sub(old_len - new_len, Ordering::Relaxed);
                }
                let _ = reply.send(Ok(()));
            }
            NodeMsg::Get { key, reply } => {
                let _ = reply.send(if self.alive {
                    Ok(self.data.get(&key).cloned())
                } else {
                    Err(NodeDown)
                });
            }
            NodeMsg::Remove { key, reply } => {
                if !self.alive {
                    let _ = reply.send(Err(NodeDown));
                    return;
                }
                let removed = self.data.remove(&key);
                if let Some(old) = &removed {
                    self.bytes_mirror
                        .fetch_sub(old.len() as u64, Ordering::Relaxed);
                }
                let _ = reply.send(Ok(removed.is_some()));
            }
            NodeMsg::Ping(reply) => {
                let _ = reply.send(self.alive);
            }
            NodeMsg::Len(reply) => {
                let _ = reply.send(self.data.len());
            }
            NodeMsg::Entries(reply) => {
                let entries = self
                    .data
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                let _ = reply.send(entries);
            }
            NodeMsg::Kill(done) => {
                self.alive = false;
                self.alive_mirror.store(false, Ordering::Release);
                let _ = done.send(());
            }
            NodeMsg::Revive(done) => {
                self.alive = true;
                self.alive_mirror.store(true, Ordering::Release);
                let _ = done.send(());
            }
        }
    }
}

/// One metadata provider: stores key-value pairs and can be killed/revived
/// for failure-injection experiments.
pub struct DhtNode {
    id: DhtNodeId,
    inner: actor::Handle<NodeMsg>,
    alive: Arc<AtomicBool>,
    data_bytes: Arc<AtomicU64>,
}

impl DhtNode {
    /// Create a live, empty node.
    pub fn new(id: DhtNodeId) -> Self {
        let alive = Arc::new(AtomicBool::new(true));
        let data_bytes = Arc::new(AtomicU64::new(0));
        let state = NodeState {
            data: HashMap::new(),
            alive: true,
            alive_mirror: Arc::clone(&alive),
            bytes_mirror: Arc::clone(&data_bytes),
        };
        let inner = actor::spawn(&format!("dht-node-{}", id.0), state, NodeState::handle);
        DhtNode {
            id,
            inner,
            alive,
            data_bytes,
        }
    }

    /// This node's id.
    pub fn id(&self) -> DhtNodeId {
        self.id
    }

    /// Store a value (replaces any existing value for the key). A dead node
    /// refuses the write.
    pub fn put(&self, key: &[u8], value: Bytes) -> NodeResult<()> {
        self.inner
            .call(|reply| NodeMsg::Put {
                key: key.to_vec(),
                value,
                reply,
            })
            .unwrap_or(Err(NodeDown))
    }

    /// Fetch a value. A dead node refuses the read (it does *not* answer
    /// "missing": the caller must fail over, not conclude absence).
    pub fn get(&self, key: &[u8]) -> NodeResult<Option<Bytes>> {
        self.inner
            .call(|reply| NodeMsg::Get {
                key: key.to_vec(),
                reply,
            })
            .unwrap_or(Err(NodeDown))
    }

    /// Remove a value; returns whether one was present. Refused when dead.
    pub fn remove(&self, key: &[u8]) -> NodeResult<bool> {
        self.inner
            .call(|reply| NodeMsg::Remove {
                key: key.to_vec(),
                reply,
            })
            .unwrap_or(Err(NodeDown))
    }

    /// Heartbeat probe: true iff the node answered and is serving.
    pub fn ping(&self) -> bool {
        self.inner.call(NodeMsg::Ping).unwrap_or(false)
    }

    /// Number of keys stored (administrative; works while dead).
    pub fn len(&self) -> usize {
        self.inner.call(NodeMsg::Len).unwrap_or(0)
    }

    /// True when the node stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of values stored.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes.load(Ordering::Relaxed)
    }

    /// Snapshot of all entries (administrative: used by rebalancing, repair
    /// and revive; works while dead, modelling a read of persistent state).
    pub fn entries(&self) -> Vec<(Vec<u8>, Bytes)> {
        self.inner.call(NodeMsg::Entries).unwrap_or_default()
    }

    /// Last-known liveness, from the shared mirror. A cheap *hint* used to
    /// order replica attempts and compute stats; the data path discovers
    /// actual death by an operation returning [`NodeDown`].
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Simulate a crash: the node stops serving but keeps its data (so a
    /// revive models a restart from persistent storage). Serialized through
    /// the mailbox, so a `put` enqueued after the kill observes the dead
    /// state.
    pub fn kill(&self) {
        let _ = self.inner.call(NodeMsg::Kill);
    }

    /// Bring the node back.
    pub fn revive(&self) {
        let _ = self.inner.call(NodeMsg::Revive);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove() {
        let n = DhtNode::new(DhtNodeId(1));
        assert_eq!(n.id(), DhtNodeId(1));
        assert!(n.is_empty());
        n.put(b"a", Bytes::from_static(b"1")).unwrap();
        n.put(b"b", Bytes::from_static(b"22")).unwrap();
        assert_eq!(n.len(), 2);
        assert_eq!(n.data_bytes(), 3);
        assert_eq!(n.get(b"a").unwrap().unwrap(), Bytes::from_static(b"1"));
        assert!(n.remove(b"a").unwrap());
        assert!(!n.remove(b"a").unwrap());
        assert_eq!(n.data_bytes(), 2);
    }

    #[test]
    fn overwrite_updates_byte_count() {
        let n = DhtNode::new(DhtNodeId(1));
        n.put(b"k", Bytes::from_static(b"0123456789")).unwrap();
        n.put(b"k", Bytes::from_static(b"xy")).unwrap();
        assert_eq!(n.data_bytes(), 2);
        n.put(b"k", Bytes::from_static(b"0123")).unwrap();
        assert_eq!(n.data_bytes(), 4);
    }

    #[test]
    fn kill_and_revive_preserve_data() {
        let n = DhtNode::new(DhtNodeId(1));
        n.put(b"k", Bytes::from_static(b"v")).unwrap();
        assert!(n.is_alive());
        n.kill();
        assert!(!n.is_alive());
        // Data survives the "crash" (models durable storage).
        n.revive();
        assert!(n.is_alive());
        assert_eq!(n.get(b"k").unwrap().unwrap(), Bytes::from_static(b"v"));
    }

    #[test]
    fn dead_node_refuses_data_ops_but_serves_admin_ops() {
        let n = DhtNode::new(DhtNodeId(2));
        n.put(b"k", Bytes::from_static(b"v")).unwrap();
        n.kill();
        // Data plane: refused, like a connection error to a crashed peer.
        assert_eq!(n.put(b"k2", Bytes::from_static(b"w")), Err(NodeDown));
        assert_eq!(n.get(b"k"), Err(NodeDown));
        assert_eq!(n.remove(b"k"), Err(NodeDown));
        assert!(!n.ping());
        // Administrative plane: the persistent state stays inspectable.
        assert_eq!(n.len(), 1);
        assert_eq!(n.entries().len(), 1);
        assert_eq!(n.data_bytes(), 1);
    }

    #[test]
    fn ping_reports_liveness_transitions() {
        let n = DhtNode::new(DhtNodeId(3));
        assert!(n.ping());
        n.kill();
        assert!(!n.ping());
        n.revive();
        assert!(n.ping());
    }

    #[test]
    fn entries_snapshot() {
        let n = DhtNode::new(DhtNodeId(1));
        for i in 0..10u8 {
            n.put(&[i], Bytes::from(vec![i; 4])).unwrap();
        }
        let mut entries = n.entries();
        entries.sort();
        assert_eq!(entries.len(), 10);
        assert_eq!(entries[3].0, vec![3u8]);
    }

    #[test]
    fn dropping_the_node_shuts_the_actor_down_without_hanging() {
        let n = DhtNode::new(DhtNodeId(9));
        n.put(b"k", Bytes::from_static(b"v")).unwrap();
        drop(n); // handle drop disconnects the mailbox; the loop exits
    }
}
