//! A2 — ablation: the BSFS client-side cache (whole-block prefetch on read,
//! write-back of full blocks) against direct per-record storage access, for
//! the 4 KB-record workload the paper says MapReduce applications generate
//! (§III-B).

use blobseer::{BlobSeer, BlobSeerConfig};
use bsfs::{Bsfs, BsfsConfig};
use std::time::Instant;

fn run_case(cache_enabled: bool) -> (f64, f64, u64, u64) {
    let block = 256 * 1024u64;
    let storage = BlobSeer::new(
        BlobSeerConfig::default()
            .with_providers(4)
            .with_page_size(block),
    );
    let fs = Bsfs::new(
        storage,
        BsfsConfig::default()
            .with_block_size(block)
            .with_cache(cache_enabled),
    );

    let record = vec![0x42u8; 4096];
    let records = 2048; // 8 MiB of 4 KiB records

    let t0 = Instant::now();
    let mut w = fs.create("/data").unwrap();
    for _ in 0..records {
        w.write(&record).unwrap();
    }
    w.close().unwrap();
    let write_secs = t0.elapsed().as_secs_f64();
    let appends = fs
        .storage()
        .version_manager()
        .latest(w.blob())
        .unwrap()
        .version
        .0;

    let t0 = Instant::now();
    let mut r = fs.open("/data").unwrap();
    let size = fs.len("/data").unwrap();
    let mut offset = 0;
    while offset < size {
        let n = 4096.min(size - offset);
        r.read_at(offset, n).unwrap();
        offset += n;
    }
    let read_secs = t0.elapsed().as_secs_f64();
    let storage_reads = fs.storage().stats().read_ops;
    (write_secs, read_secs, appends, storage_reads)
}

fn main() {
    println!("== A2: client cache ablation (4 KiB records, 256 KiB blocks, 8 MiB file) ==");
    println!();
    println!(
        "{:<12} {:>12} {:>12} {:>16} {:>18}",
        "cache", "write (s)", "read (s)", "storage appends", "storage reads"
    );
    for (label, enabled) in [("enabled", true), ("disabled", false)] {
        let (w, r, appends, reads) = run_case(enabled);
        println!("{label:<12} {w:>12.3} {r:>12.3} {appends:>16} {reads:>18}");
    }
}
