//! Offline shim for the [`parking_lot`](https://docs.rs/parking_lot) crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s poison-free API surface
//! (locking never returns a `Result`; a poisoned std lock is recovered
//! transparently, matching parking_lot's semantics of simply not poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual exclusion primitive. `lock()` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can move the std guard out and back in while
    // the caller keeps holding `&mut MutexGuard`.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Attempt to acquire the lock without blocking; `None` if it is held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock. `read()`/`write()` never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self
            .inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner);
        RwLockReadGuard { inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self
            .inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner);
        RwLockWriteGuard { inner }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Mirrors parking_lot's `&mut guard` signature by
    /// temporarily moving the std guard through the wait call.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard
            .inner
            .take()
            .expect("guard present outside Condvar::wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wait_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cvar.wait(&mut ready);
        }
        drop(ready);
        handle.join().unwrap();
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let lock = RwLock::new(41);
        let r1 = lock.read();
        let r2 = lock.read();
        assert_eq!(*r1 + 1, *r2 + 1);
        drop((r1, r2));
        *lock.write() += 1;
        assert_eq!(*lock.read(), 42);
    }
}
