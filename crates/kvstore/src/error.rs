//! Error type shared by the page-store back-ends.

use std::fmt;
use std::io;

/// Convenience alias used throughout the crate.
pub type KvResult<T> = Result<T, KvError>;

/// Errors surfaced by the key-value store.
#[derive(Debug)]
pub enum KvError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A record on disk failed its checksum or had an impossible length;
    /// the payload names the offending segment file.
    Corrupt { segment: String, detail: String },
    /// A key or value exceeded the configured limits.
    TooLarge {
        what: &'static str,
        len: usize,
        max: usize,
    },
    /// The store has been closed and can no longer serve requests.
    Closed,
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Io(e) => write!(f, "I/O error: {e}"),
            KvError::Corrupt { segment, detail } => {
                write!(f, "corrupt record in segment {segment}: {detail}")
            }
            KvError::TooLarge { what, len, max } => {
                write!(
                    f,
                    "{what} of {len} bytes exceeds the maximum of {max} bytes"
                )
            }
            KvError::Closed => write!(f, "store is closed"),
        }
    }
}

impl std::error::Error for KvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for KvError {
    fn from(e: io::Error) -> Self {
        KvError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = KvError::Corrupt {
            segment: "seg-3.log".into(),
            detail: "bad crc".into(),
        };
        assert!(e.to_string().contains("seg-3.log"));
        assert!(e.to_string().contains("bad crc"));

        let e = KvError::TooLarge {
            what: "key",
            len: 10,
            max: 5,
        };
        assert!(e.to_string().contains("key"));
        assert!(e.to_string().contains("10"));

        assert_eq!(KvError::Closed.to_string(), "store is closed");
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        let io_err = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: KvError = io_err.into();
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
